let port_label port = match port with 0 -> "s" | 1 -> "c" | _ -> "co"

let emit ?(graph_name = "netlist") netlist =
  let buffer = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer (s ^ "\n")) fmt in
  line "digraph %s {" graph_name;
  line "  rankdir=LR;";
  line "  node [fontname=\"monospace\"];";
  (* primary inputs and constants referenced anywhere *)
  for net = 0 to Netlist.net_count netlist - 1 do
    match Netlist.driver netlist net with
    | Netlist.From_input { var; bit } ->
      line "  net%d [shape=plaintext, label=\"%s[%d]\"];" net var bit
    | Netlist.From_const b ->
      line "  net%d [shape=plaintext, label=\"%c\"];" net (if b then '1' else '0')
    | Netlist.From_cell _ -> ()
  done;
  Netlist.iter_cells
    (fun id (c : Netlist.cell) ->
      line "  cell%d [shape=box, label=\"%s\"];" id (Dp_tech.Cell_kind.name c.kind);
      Array.iter
        (fun input ->
          match Netlist.driver netlist input with
          | Netlist.From_cell { cell; port } ->
            line "  cell%d -> cell%d [label=\"%s\"];" cell id (port_label port)
          | Netlist.From_input _ | Netlist.From_const _ ->
            line "  net%d -> cell%d;" input id)
        c.inputs)
    netlist;
  List.iter
    (fun (name, nets) ->
      Array.iteri
        (fun bit net ->
          line "  out_%s_%d [shape=plaintext, label=\"%s[%d]\"];" name bit name bit;
          match Netlist.driver netlist net with
          | Netlist.From_cell { cell; port } ->
            line "  cell%d -> out_%s_%d [label=\"%s\"];" cell name bit
              (port_label port)
          | Netlist.From_input _ | Netlist.From_const _ ->
            line "  net%d -> out_%s_%d;" net name bit)
        nets)
    (Netlist.outputs netlist);
  line "}";
  Buffer.contents buffer
