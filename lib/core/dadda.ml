open Dp_netlist
open Dp_bitmatrix

(* Dadda's sequence d_1 = 2, d_{k+1} = floor(1.5 d_k): the target heights
   2, 3, 4, 6, 9, 13, 19, 28, ...  [next_target h] is the largest member
   strictly below h (the next stage's goal), except 2 for h <= 2. *)
let next_target height =
  let rec go d = if d * 3 / 2 >= height then d else go (d * 3 / 2) in
  if height <= 2 then 2 else go 2

(* Reduce one pool to [target] members with the classic minimal rule: an HA
   when exactly one above target, an FA otherwise; fixed (listed) order.
   The pool length is threaded through the loop (an FA shrinks it by two,
   an HA by one) instead of being recounted every step. *)
let shrink netlist ~target pool =
  let rec go pool n carries =
    if n <= target then pool, List.rev carries
    else
      match pool with
      | x :: y :: z :: rest when n > target + 1 ->
        let sum, carry = Netlist.fa netlist x y z in
        go (rest @ [ sum ]) (n - 2) (carry :: carries)
      | x :: y :: rest ->
        let sum, carry = Netlist.ha netlist x y in
        go (rest @ [ sum ]) (n - 1) (carry :: carries)
      | [ _ ] | [] -> pool, List.rev carries
  in
  go pool (List.length pool) []

let allocate netlist matrix =
  let in_range j =
    match Matrix.max_width matrix with Some w -> j < w | None -> true
  in
  let rec stages () =
    let height = Matrix.height matrix in
    if height > 2 then begin
      let target = next_target height in
      (* Columns are processed rightmost first; carries produced in this
         stage count against the next column's target within the same
         stage (Dadda's accounting). *)
      let carries_in = ref [] in
      let j = ref 0 in
      while !j < Matrix.width matrix || !carries_in <> [] do
        if in_range !j then begin
          let col = Matrix.column matrix !j @ !carries_in in
          let kept, carries_out = shrink netlist ~target col in
          Matrix.set_column matrix !j kept;
          carries_in := carries_out
        end
        else
          (* modular matrix: addends at weights >= W vanish *)
          carries_in := [];
        incr j
      done;
      stages ()
    end
  in
  stages ();
  assert (Matrix.is_reduced matrix)
