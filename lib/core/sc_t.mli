(** Algorithm SC_T — FA allocation for a single column, for timing (paper
    Sec. 3.3).  A Huffman-like greedy: the three earliest-arriving addends
    (including sums produced earlier in the same column — the
    column-interaction of Fig. 2(c)) feed each new FA; when exactly three
    remain, an HA on the two earliest leaves the column with two.

    Lemma 1's delay-relevant dominances and the end-to-end near-optimality
    of the resulting FA_AOT are checked against exhaustive search in the
    test suite.

    The HA-on-exactly-three convention (the paper's footnote 1) locally
    dominates the alternative of spending an FA on all three (the Fig. 1
    convention); [Fa_finish] exists to measure that design choice. *)

open Dp_netlist

type tie_break =
  | Arrival_only
  | Prefer_high_q
      (** The paper's combined rule: break arrival ties toward large |q| to
          also help power. *)

type three_policy =
  | Ha_finish  (** the paper's rule: HA on the two earliest, keep two *)
  | Fa_finish  (** one FA on all three, keep only its sum *)

(** The SC_T total order (arrival, then optionally |q|, then net id) —
    shared with the counter-aware {!Gpc} strategies. *)
val compare_nets : Netlist.t -> tie_break -> Netlist.net -> Netlist.net -> int

(** Heap-based selection (O(n log n) per column): the three minima feed
    each FA, popped from a {!Pqueue} keyed by arrival, then |q| (under
    [Prefer_high_q]), then net id. *)
val reduce_column :
  ?tie_break:tie_break -> ?three_policy:three_policy ->
  Netlist.t -> Netlist.net list ->
  Netlist.net list * Netlist.net list

(** The original sort-per-step implementation (O(n^2 log n) per column),
    retained as the reference for the decision-identity tests: both
    implementations must produce byte-identical netlists. *)
val reduce_column_reference :
  ?tie_break:tie_break -> ?three_policy:three_policy ->
  Netlist.t -> Netlist.net list ->
  Netlist.net list * Netlist.net list
