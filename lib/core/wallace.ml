open Dp_netlist
open Dp_bitmatrix

(* One column's share of a Wallace stage: FAs over consecutive triples in
   the listed (fixed) order, an HA on a trailing pair, pass-through for a
   trailing single.  Returns (kept sums/leftovers, carries). *)
let compress_stage netlist col =
  let rec go pool kept carries =
    match pool with
    | x :: y :: z :: rest ->
      let sum, carry = Netlist.fa netlist x y z in
      go rest (sum :: kept) (carry :: carries)
    | [ x; y ] ->
      let sum, carry = Netlist.ha netlist x y in
      List.rev (sum :: kept), List.rev (carry :: carries)
    | [ x ] -> List.rev (x :: kept), List.rev carries
    | [] -> List.rev kept, List.rev carries
  in
  go col [] []

(* One global stage: every tall column is compressed against its snapshot;
   carries join the next column only after the stage completes. *)
let stage netlist matrix =
  let width = Matrix.width matrix in
  let carries = Array.make (width + 1) [] in
  let changed = ref false in
  for j = 0 to width - 1 do
    match Matrix.column matrix j with
    | _ :: _ :: _ :: _ as col ->
      changed := true;
      let kept, cs = compress_stage netlist col in
      Matrix.set_column matrix j kept;
      carries.(j + 1) <- cs
    | [] | [ _ ] | [ _; _ ] -> ()
  done;
  Array.iteri
    (fun j cs -> List.iter (fun net -> Matrix.add matrix ~weight:j net) cs)
    carries;
  !changed

let allocate netlist matrix =
  while stage netlist matrix do
    ()
  done;
  assert (Matrix.is_reduced matrix)
