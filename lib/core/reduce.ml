open Dp_netlist
open Dp_bitmatrix

type column_reducer =
  Netlist.t -> Netlist.net list -> Netlist.net list * Netlist.net list

let sweep netlist matrix ~reducer =
  (* Condition 1 of the paper (Sec. 3.2): reduce the rightmost column first,
     inserting its carry-outs into the next column before that one is
     processed, until every column holds at most two addends.  The matrix
     width can grow as carries spill leftwards (or stay capped when the
     matrix is modular). *)
  let gov = Netlist.gov netlist in
  let j = ref 0 in
  while !j < Matrix.width matrix do
    (match gov with
    | Some g -> Dp_gov.Gov.check ~site:Dp_gov.Gov.Reduce g
    | None -> ());
    (match Matrix.column matrix !j with
    | _ :: _ :: _ :: _ as col ->
      let kept, carries = reducer netlist col in
      (match kept with
      | _ :: _ :: _ :: _ ->
        invalid_arg "Reduce.sweep: reducer left more than two addends"
      | [] | [ _ ] | [ _; _ ] -> ());
      Matrix.set_column matrix !j kept;
      List.iter (fun net -> Matrix.add matrix ~weight:(!j + 1) net) carries
    | [] | [ _ ] | [ _; _ ] -> ());
    incr j
  done;
  assert (Matrix.is_reduced matrix)
