open Dp_netlist
open Dp_bitmatrix

(* Generalized parallel-counter (GPC) allocation.  The FA/HA strategies
   of the paper combine at most three addends per step; the counter-aware
   variants below extend the same greedy column discipline to the
   certified m:k cells of [Dp_counters] — 7:3, 6:3 and 5:3 counters for
   the sweep-style strategies, the 4:2 compressor for the staged
   Dadda-style tree.  Every allocation first runs the exact-synthesis
   certificate for the netlist's technology, so a miswired body or a
   drifted closed-form model stops synthesis instead of silently
   corrupting timing and power numbers. *)

(* An m:3 counter emits digits at weights j, j+1 AND j+2, so the
   generalized reducer returns two carry lists.  This sweep is
   [Reduce.sweep] with the extra weight-(j+2) insertion; [Matrix.add]
   keeps the modular-width discipline (addends at weights >= W vanish). *)
type reducer =
  Netlist.t ->
  Netlist.net list ->
  Netlist.net list * Netlist.net list * Netlist.net list

let sweep netlist matrix ~reducer =
  let gov = Netlist.gov netlist in
  let j = ref 0 in
  while !j < Matrix.width matrix do
    (match gov with
    | Some g -> Dp_gov.Gov.check ~site:Dp_gov.Gov.Reduce g
    | None -> ());
    (match Matrix.column matrix !j with
    | _ :: _ :: _ :: _ as col ->
      let kept, ones, twos = reducer netlist col in
      (match kept with
      | _ :: _ :: _ :: _ ->
        invalid_arg "Gpc.sweep: reducer left more than two addends"
      | [] | [ _ ] | [ _; _ ] -> ());
      Matrix.set_column matrix !j kept;
      List.iter (fun net -> Matrix.add matrix ~weight:(!j + 1) net) ones;
      List.iter (fun net -> Matrix.add matrix ~weight:(!j + 2) net) twos
    | [] | [ _ ] | [ _; _ ] -> ());
    incr j
  done;
  assert (Matrix.is_reduced matrix)

(* Split-and-fill column rule (the JoRGS planning baseline), in two
   phases.

   Phase 1 — split: counters pack the column's {e cohort}, the extremal
   prefix of the sorted pool admitted by the strategy's cohort predicate.
   While five or more cohort members remain, the largest fitting counter
   (7:3 above six, then 6:3, then 5:3) consumes the first m of them; its
   weight-j sum is set aside for phase 2 rather than fed back, so
   counters never stack on each other's outputs within a column.  The
   sort order is the strategy's comparator, so for SC_T the earliest
   arrivals land on the slow low-index pins and the latest cohort member
   on the fast high-index pin (pin-aware [Tech.pin_delay] makes that
   placement pay off).

   Phase 2 — fill: the leftovers plus the counter sums go through the
   ordinary FA/HA greedy (FA on the three extremal while four or more
   remain, HA on the two extremal at exactly three), leaving at most two.

   The cohort predicate is what keeps the timing strategy honest: a
   carry trickling in from a previously reduced column arrives at least
   one FA delay after the column's native addends, so it fails the
   cohort test and rides a plain FA — the cheap carry path — instead of
   being swallowed by a counter whose exported carries would cascade the
   lateness across every remaining column. *)
let apply_counter netlist m pins =
  match m with
  | 7 -> Netlist.c73 netlist pins
  | 6 -> Netlist.c63 netlist pins
  | _ -> Netlist.c53 netlist pins

let reduce_column ~cmp ~cohort netlist addends =
  let gov = Netlist.gov netlist in
  let poll () =
    match gov with
    | Some g -> Dp_gov.Gov.check ~site:Dp_gov.Gov.Reduce g
    | None -> ()
  in
  let sorted = List.sort cmp addends in
  (* Constants never enter a counter: the builders would degrade the cell
     around them (wasting pins), and a const's 0.0 arrival would anchor
     the SC_T cohort window below every real signal.  They ride the FA/HA
     fill, whose builders fold them away. *)
  let eligible, consts =
    List.partition (fun x -> Netlist.const_value netlist x = None) sorted
  in
  let in_cohort =
    match eligible with [] -> fun _ -> false | x0 :: _ -> cohort x0
  in
  let rec take k acc pool =
    if k = 0 then List.rev acc, pool
    else
      match pool with
      | x :: rest -> take (k - 1) (x :: acc) rest
      | [] -> invalid_arg "Gpc.reduce_column: pool underflow"
  in
  let rec split pool e fills ones twos =
    poll ();
    if e >= 5 then begin
      let m = min e 7 in
      let pins, rest = take m [] pool in
      let s0, s1, s2 = apply_counter netlist m (Array.of_list pins) in
      split rest (e - m) (s0 :: fills) (s1 :: ones) (s2 :: twos)
    end
    else pool, fills, ones, twos
  in
  let cohort_size =
    (* the comparator sorts cohort members first for both strategy
       orders, so the cohort is a prefix of [eligible] *)
    List.length (List.filter in_cohort eligible)
  in
  let leftovers, fills, ones, twos = split eligible cohort_size [] [] [] in
  let pool = Pqueue.of_list ~cmp ~dummy:(-1) (consts @ leftovers @ fills) in
  (* [ones]/[twos] stay accumulated in reverse until the single final
     List.rev, so carries come out in allocation order. *)
  let rec fill ones =
    poll ();
    let n = Pqueue.length pool in
    if n >= 4 then begin
      let x = Pqueue.pop pool in
      let y = Pqueue.pop pool in
      let z = Pqueue.pop pool in
      let sum, carry = Netlist.fa netlist x y z in
      Pqueue.push pool sum;
      fill (carry :: ones)
    end
    else if n = 3 then begin
      let x = Pqueue.pop pool in
      let y = Pqueue.pop pool in
      let sum, carry = Netlist.ha netlist x y in
      [ sum; Pqueue.pop pool ], List.rev (carry :: ones), List.rev twos
    end
    else Pqueue.drain pool, List.rev ones, List.rev twos
  in
  fill ones

(* The sort-per-step implementation of the fill phase (the split phase is
   already a deterministic walk of the sorted pool and is shared),
   retained as the reference the decision-identity tests diff whole
   netlists against: the comparators are total orders, so the heap's pop
   sequence equals the sorted order. *)
let reduce_column_reference ~cmp ~cohort netlist addends =
  let sorted = List.sort cmp addends in
  let eligible, consts =
    List.partition (fun x -> Netlist.const_value netlist x = None) sorted
  in
  let in_cohort =
    match eligible with [] -> fun _ -> false | x0 :: _ -> cohort x0
  in
  let rec take k acc pool =
    if k = 0 then List.rev acc, pool
    else
      match pool with
      | x :: rest -> take (k - 1) (x :: acc) rest
      | [] -> invalid_arg "Gpc.reduce_column_reference: pool underflow"
  in
  let rec split pool e fills ones twos =
    if e >= 5 then begin
      let m = min e 7 in
      let pins, rest = take m [] pool in
      let s0, s1, s2 = apply_counter netlist m (Array.of_list pins) in
      split rest (e - m) (s0 :: fills) (s1 :: ones) (s2 :: twos)
    end
    else pool, fills, ones, twos
  in
  let cohort_size = List.length (List.filter in_cohort eligible) in
  let leftovers, fills, ones, twos = split eligible cohort_size [] [] [] in
  let sort = List.sort cmp in
  let rec fill pool ones =
    let pool = sort pool in
    match pool with
    | x :: y :: z :: (_ :: _ as rest) ->
      let sum, carry = Netlist.fa netlist x y z in
      fill (sum :: rest) (carry :: ones)
    | [ x; y; z ] ->
      let sum, carry = Netlist.ha netlist x y in
      [ sum; z ], List.rev (carry :: ones), List.rev twos
    | [] | [ _ ] | [ _; _ ] -> pool, List.rev ones, List.rev twos
  in
  fill (consts @ leftovers @ fills) ones

(* SC_T's cohort: everything within one FA sum delay of the column's
   earliest signal — the near-simultaneous bulk (native partial
   products), never the carries rippling in from columns already
   reduced. *)
let arrival_cohort netlist x0 =
  let window =
    Dp_tech.Tech.delay (Netlist.tech netlist) Dp_tech.Cell_kind.Fa ~port:0
  in
  let cut = Netlist.arrival netlist x0 +. window in
  fun x -> Netlist.arrival netlist x <= cut

let reduce_column_t ?(tie_break = Sc_t.Arrival_only) netlist addends =
  reduce_column
    ~cmp:(Sc_t.compare_nets netlist tie_break)
    ~cohort:(arrival_cohort netlist) netlist addends

let reduce_column_t_reference ?(tie_break = Sc_t.Arrival_only) netlist addends
    =
  reduce_column_reference
    ~cmp:(Sc_t.compare_nets netlist tie_break)
    ~cohort:(arrival_cohort netlist) netlist addends

(* SC_LP packs counters regardless of arrival: the power objective wants
   the maximum number of addends absorbed by the cheapest structure, and
   the |q| order feeds the strongest (least active) signals first. *)
let any_cohort _ _ = true

let reduce_column_lp ?(tie_break = Sc_lp.Q_only) netlist addends =
  reduce_column
    ~cmp:(Sc_lp.compare_nets netlist tie_break)
    ~cohort:any_cohort netlist addends

let reduce_column_lp_reference ?(tie_break = Sc_lp.Q_only) netlist addends =
  reduce_column_reference
    ~cmp:(Sc_lp.compare_nets netlist tie_break)
    ~cohort:any_cohort netlist addends

let certify netlist = Dp_counters.Certify.ensure (Netlist.tech netlist)

let allocate_t ?tie_break netlist matrix =
  certify netlist;
  sweep netlist matrix ~reducer:(fun netlist col ->
      reduce_column_t ?tie_break netlist col)

let allocate_lp ?tie_break netlist matrix =
  certify netlist;
  sweep netlist matrix ~reducer:(fun netlist col ->
      reduce_column_lp ?tie_break netlist col)

(* Dadda-style 4:2 tree.  Each stage halves the matrix height (target
   ceil(h/2), floored at two); within a column, the excess over the
   target is removed four rows at a time by 4:2 compressors in fixed
   (listed) order — the fifth pool slot is the compressor's cin, so a
   carry-out arriving from the column to the right chains into it
   ripple-free (the certified body's cout is independent of cin) — then
   by an FA for a residual excess of two and an HA for one.  Carries and
   carry-outs both land one column left {e within the same stage},
   Dadda's accounting, as in [Dadda.allocate]. *)
let compress netlist ~target pool =
  let rec go pool n carries =
    if n <= target then pool, List.rev carries
    else
      match pool with
      | x0 :: x1 :: x2 :: x3 :: cin :: rest when n - target >= 3 ->
        let s, c, co = Netlist.c42 netlist [| x0; x1; x2; x3; cin |] in
        go (rest @ [ s ]) (n - 4) (co :: c :: carries)
      | x :: y :: z :: rest when n > target + 1 ->
        let sum, carry = Netlist.fa netlist x y z in
        go (rest @ [ sum ]) (n - 2) (carry :: carries)
      | x :: y :: rest ->
        let sum, carry = Netlist.ha netlist x y in
        go (rest @ [ sum ]) (n - 1) (carry :: carries)
      | [ _ ] | [] -> pool, List.rev carries
  in
  go pool (List.length pool) []

let allocate_dadda netlist matrix =
  certify netlist;
  let gov = Netlist.gov netlist in
  let in_range j =
    match Matrix.max_width matrix with Some w -> j < w | None -> true
  in
  let rec stages () =
    let height = Matrix.height matrix in
    if height > 2 then begin
      let target = max 2 ((height + 1) / 2) in
      let carries_in = ref [] in
      let j = ref 0 in
      while !j < Matrix.width matrix || !carries_in <> [] do
        (match gov with
        | Some g -> Dp_gov.Gov.check ~site:Dp_gov.Gov.Reduce g
        | None -> ());
        if in_range !j then begin
          let col = Matrix.column matrix !j @ !carries_in in
          let kept, carries_out = compress netlist ~target col in
          Matrix.set_column matrix !j kept;
          carries_in := carries_out
        end
        else
          (* modular matrix: addends at weights >= W vanish *)
          carries_in := [];
        incr j
      done;
      stages ()
    end
  in
  stages ();
  assert (Matrix.is_reduced matrix)
