open Dp_netlist

type tie_break = Arrival_only | Prefer_high_q

type three_policy = Ha_finish | Fa_finish

(* Earliest arrival first; among ties, the paper's combined rule optionally
   prefers the largest |q| (Sec. 4.3, last paragraph); net id last for
   determinism. *)
let compare_nets netlist tie_break x y =
  let by_arrival = Float.compare (Netlist.arrival netlist x) (Netlist.arrival netlist y) in
  if by_arrival <> 0 then by_arrival
  else
    let by_q =
      match tie_break with
      | Arrival_only -> 0
      | Prefer_high_q ->
        Float.compare
          (Float.abs (Netlist.q netlist y))
          (Float.abs (Netlist.q netlist x))
    in
    if by_q <> 0 then by_q else Int.compare x y

(* When exactly three addends remain, the paper's footnote 1 allocates an
   HA on the two earliest so the column keeps exactly two addends.  One
   could instead spend an FA on all three (the convention of Fig. 1 and of
   word-level CSA trees), keeping one addend and pushing one carry left;
   that choice is locally dominated — both its kept-signal and its carry
   are never earlier than the HA's — which the finish-policy ablation
   makes visible. *)
let finish_three policy netlist x y z carries =
  match policy with
  | Fa_finish ->
    let sum, carry = Netlist.fa netlist x y z in
    [ sum ], List.rev (carry :: carries)
  | Ha_finish ->
    let sum, carry = Netlist.ha netlist x y in
    [ sum; z ], List.rev (carry :: carries)

(* Algorithm SC_T (Sec. 3.3): while more than two addends remain, combine
   the three earliest with an FA (the sum stays in the column, the carry
   leaves); when exactly three remain, finish per [three_policy].

   The greedy selection is Huffman-like: each step only ever needs the
   three minima of the pool, so a binary min-heap turns the reference's
   O(n^2 log n) sort-per-step into O(n log n).  The comparator is a total
   order (net id last), so the heap's pop sequence equals the sorted
   order and the produced netlist is decision-identical to
   [reduce_column_reference] — a property the test suite checks by
   diffing whole netlists. *)
let reduce_column ?(tie_break = Arrival_only) ?(three_policy = Ha_finish)
    netlist addends =
  let pool =
    Pqueue.of_list ~cmp:(compare_nets netlist tie_break) ~dummy:(-1) addends
  in
  let gov = Netlist.gov netlist in
  let rec go carries =
    (match gov with
    | Some g -> Dp_gov.Gov.check ~site:Dp_gov.Gov.Reduce g
    | None -> ());
    if Pqueue.length pool > 3 then begin
      let x = Pqueue.pop pool in
      let y = Pqueue.pop pool in
      let z = Pqueue.pop pool in
      let sum, carry = Netlist.fa netlist x y z in
      Pqueue.push pool sum;
      go (carry :: carries)
    end
    else if Pqueue.length pool = 3 then begin
      let x = Pqueue.pop pool in
      let y = Pqueue.pop pool in
      let z = Pqueue.pop pool in
      finish_three three_policy netlist x y z carries
    end
    else Pqueue.drain pool, List.rev carries
  in
  go []

(* The pre-heap implementation, retained verbatim as the reference the
   decision-identity tests diff against. *)
let reduce_column_reference ?(tie_break = Arrival_only)
    ?(three_policy = Ha_finish) netlist addends =
  let sort = List.sort (compare_nets netlist tie_break) in
  let rec go pool carries =
    match sort pool with
    | x :: y :: z :: (_ :: _ as rest) ->
      let sum, carry = Netlist.fa netlist x y z in
      go (sum :: rest) (carry :: carries)
    | [ x; y; z ] -> finish_three three_policy netlist x y z carries
    | ([] | [ _ ] | [ _; _ ]) as rest -> rest, List.rev carries
  in
  go addends []
