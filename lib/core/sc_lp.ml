open Dp_netlist

type tie_break = Q_only | Prefer_early

(* Largest |q| first (statement a of SC_LP); ties optionally prefer the
   earliest arrival (the reverse of FA_AOT's combined rule); net id last
   for determinism. *)
let compare_nets netlist tie_break x y =
  let by_q =
    Float.compare
      (Float.abs (Netlist.q netlist y))
      (Float.abs (Netlist.q netlist x))
  in
  if by_q <> 0 then by_q
  else
    let by_arrival =
      match tie_break with
      | Q_only -> 0
      | Prefer_early ->
        Float.compare (Netlist.arrival netlist x) (Netlist.arrival netlist y)
    in
    if by_arrival <> 0 then by_arrival else Int.compare x y

(* Algorithm SC_LP (Sec. 4.3): if the column population is odd, a
   pseudo-addend of constant 0 joins the pool to model the HA (|q| of the
   constant is the maximal 0.5, so the HA is allocated in the first
   iteration); then every step feeds the three largest-|q| addends to a
   new FA.  The builder degrades an FA with a constant input to an HA.
   The pool size stays even, so it lands on exactly two.

   Like SC_T, each step only needs the three extrema of the pool, so a
   min-heap under the descending-|q| comparator replaces the reference's
   sort-per-step.  The comparator is total (net id last), so the result
   is decision-identical to [reduce_column_reference] — including the
   kept-pair order, which the reference leaves as [last sum; leftover]
   rather than re-sorted. *)
let reduce_column ?(tie_break = Q_only) netlist addends =
  match addends with
  | [] | [ _ ] | [ _; _ ] -> addends, []
  | _ :: _ :: _ :: _ ->
    let even_pool =
      if List.length addends mod 2 = 1 then
        Netlist.const netlist false :: addends
      else addends
    in
    let pool =
      Pqueue.of_list ~cmp:(compare_nets netlist tie_break) ~dummy:(-1) even_pool
    in
    let gov = Netlist.gov netlist in
    (* The pool size is even and >= 4, and each step removes two, so the
       step that leaves one heap element is always reached. *)
    let rec go carries =
      (match gov with
      | Some g -> Dp_gov.Gov.check ~site:Dp_gov.Gov.Reduce g
      | None -> ());
      let x = Pqueue.pop pool in
      let y = Pqueue.pop pool in
      let z = Pqueue.pop pool in
      let sum, carry = Netlist.fa netlist x y z in
      let carries = carry :: carries in
      if Pqueue.length pool = 1 then
        [ sum; Pqueue.pop pool ], List.rev carries
      else begin
        Pqueue.push pool sum;
        go carries
      end
    in
    go []

(* The pre-heap implementation, retained verbatim as the reference the
   decision-identity tests diff against. *)
let reduce_column_reference ?(tie_break = Q_only) netlist addends =
  if List.length addends <= 2 then addends, []
  else begin
    let pool =
      if List.length addends mod 2 = 1 then
        Netlist.const netlist false :: addends
      else addends
    in
    let sort = List.sort (compare_nets netlist tie_break) in
    let rec go pool carries =
      if List.length pool <= 2 then pool, List.rev carries
      else
        match sort pool with
        | x :: y :: z :: rest ->
          let sum, carry = Netlist.fa netlist x y z in
          go (sum :: rest) (carry :: carries)
        | [] | [ _ ] | [ _; _ ] -> assert false
    in
    go pool []
  end
