open Dp_netlist

(* An "input" addend in the sense of Fig. 2(b): anything not produced by an
   FA/HA — primary inputs, constants and partial-product gates qualify;
   sums and carries do not. *)
let is_original netlist net =
  match Netlist.driver netlist net with
  | Netlist.From_cell { cell; port = _ } -> (
    match (Netlist.cell netlist cell).kind with
    | Dp_tech.Cell_kind.Fa | Dp_tech.Cell_kind.Ha | Dp_tech.Cell_kind.C42
    | Dp_tech.Cell_kind.C53 | Dp_tech.Cell_kind.C63 | Dp_tech.Cell_kind.C73 ->
      false
    | Dp_tech.Cell_kind.And_n _ | Dp_tech.Cell_kind.Or_n _
    | Dp_tech.Cell_kind.Xor_n _ | Dp_tech.Cell_kind.Not
    | Dp_tech.Cell_kind.Buf -> true)
  | Netlist.From_input _ | Netlist.From_const _ -> true

let reduce_column netlist addends =
  (* The Fig. 2(b) strategy: FA inputs are chosen earliest-first, but only
     among "input" addends — FA/HA sums and carries are never re-selected
     while at least three input addends remain.  Once they run short the
     remaining pool is finished like SC_T (a reconstruction; the paper only
     shows the 4-addend case). *)
  let by_arrival x y =
    let c = Float.compare (Netlist.arrival netlist x) (Netlist.arrival netlist y) in
    if c <> 0 then c else Int.compare x y
  in
  let remove3 x y z pool =
    List.filter (fun n -> n <> x && n <> y && n <> z) pool
  in
  let rec go pool carries =
    if List.length pool <= 2 then pool, List.rev carries
    else
      let originals =
        List.sort by_arrival (List.filter (is_original netlist) pool)
      in
      match originals with
      | x :: y :: z :: _ ->
        let sum, carry = Netlist.fa netlist x y z in
        go (sum :: remove3 x y z pool) (carry :: carries)
      | [] | [ _ ] | [ _; _ ] -> (
        match List.sort by_arrival pool with
        | x :: y :: z :: (_ :: _ as rest) ->
          let sum, carry = Netlist.fa netlist x y z in
          go (sum :: rest) (carry :: carries)
        | [ x; y; z ] ->
          let sum, carry = Netlist.ha netlist x y in
          [ sum; z ], List.rev (carry :: carries)
        | ([] | [ _ ] | [ _; _ ]) as rest -> rest, List.rev carries)
  in
  go addends []

let allocate netlist matrix =
  Reduce.sweep netlist matrix ~reducer:reduce_column
