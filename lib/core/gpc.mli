(** Generalized parallel-counter (GPC) allocation strategies.

    Extends the paper's greedy FA/HA column discipline to the certified
    counter cells of {!Dp_counters}: the sweep-style strategies split
    columns with 7:3/6:3/5:3 counters under the SC_T (earliest-arrival)
    or SC_LP (largest-|q|) orders, and a Dadda-style staged tree halves
    the matrix height with 4:2 compressors.  Every [allocate_*] entry
    first runs {!Dp_counters.Certify.ensure} for the netlist's
    technology, so counter bodies are exhaustively proven before any
    instance is built. *)

open Dp_netlist
open Dp_bitmatrix

(** A generalized column reducer: returns the kept addends (at most two)
    plus the carries for weights [j+1] and [j+2]. *)
type reducer =
  Netlist.t ->
  Netlist.net list ->
  Netlist.net list * Netlist.net list * Netlist.net list

(** [Reduce.sweep] generalized to counter reducers: rightmost column
    first, inserting weight-[j+1] and weight-[j+2] carries before those
    columns are processed.  @raise Invalid_argument if the reducer leaves
    more than two addends. *)
val sweep : Netlist.t -> Matrix.t -> reducer:reducer -> unit

(** Split-and-fill under the SC_T order: counters (7:3, then 6:3, then
    5:3) pack the column's near-simultaneous cohort — addends within one
    FA sum delay of the earliest, i.e. the native bulk, never the late
    carries from already-reduced columns — earliest arrivals on the slow
    low pins; the leftovers and counter sums then go through the plain
    FA/HA greedy (FA while four or more remain, HA at three), leaving at
    most two.  Returns [(kept, weight-(j+1) carries, weight-(j+2)
    carries)]. *)
val reduce_column_t :
  ?tie_break:Sc_t.tie_break ->
  Netlist.t ->
  Netlist.net list ->
  Netlist.net list * Netlist.net list * Netlist.net list

(** Sort-per-step reference for {!reduce_column_t}; decision-identical. *)
val reduce_column_t_reference :
  ?tie_break:Sc_t.tie_break ->
  Netlist.t ->
  Netlist.net list ->
  Netlist.net list * Netlist.net list * Netlist.net list

(** The same split-and-fill rule under the SC_LP order (largest |q|
    absorbed first), with an unrestricted cohort: the power objective
    packs as many addends into counters as possible. *)
val reduce_column_lp :
  ?tie_break:Sc_lp.tie_break ->
  Netlist.t ->
  Netlist.net list ->
  Netlist.net list * Netlist.net list * Netlist.net list

(** Sort-per-step reference for {!reduce_column_lp}; decision-identical. *)
val reduce_column_lp_reference :
  ?tie_break:Sc_lp.tie_break ->
  Netlist.t ->
  Netlist.net list ->
  Netlist.net list * Netlist.net list * Netlist.net list

(** Timing-driven counter allocation over the whole matrix. *)
val allocate_t : ?tie_break:Sc_t.tie_break -> Netlist.t -> Matrix.t -> unit

(** Power-driven counter allocation over the whole matrix. *)
val allocate_lp : ?tie_break:Sc_lp.tie_break -> Netlist.t -> Matrix.t -> unit

(** Dadda-style staged 4:2 tree: each stage reduces the height to
    [max 2 (ceil h/2)], chaining compressor carry-outs into the next
    column's cin within the same stage (ripple-free by the certified
    body's cin-independent carry-out). *)
val allocate_dadda : Netlist.t -> Matrix.t -> unit
