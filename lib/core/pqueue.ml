type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ~cmp ~dummy = { cmp; data = Array.make 16 dummy; len = 0; dummy }
let length h = h.len
let is_empty h = h.len = 0

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.len && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  if h.len = Array.length h.data then begin
    let data = Array.make (2 * h.len) h.dummy in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end;
  h.data.(h.len) <- x;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then invalid_arg "Pqueue.pop: empty";
  let top = h.data.(0) in
  h.len <- h.len - 1;
  h.data.(0) <- h.data.(h.len);
  h.data.(h.len) <- h.dummy;
  if h.len > 0 then sift_down h 0;
  top

let of_list ~cmp ~dummy = function
  | [] -> create ~cmp ~dummy
  | xs ->
    let data = Array.of_list xs in
    let h = { cmp; data; len = Array.length data; dummy } in
    for i = (h.len / 2) - 1 downto 0 do
      sift_down h i
    done;
    h

let drain h =
  let rec go acc = if is_empty h then List.rev acc else go (pop h :: acc) in
  go []
