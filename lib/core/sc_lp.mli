(** Algorithm SC_LP — FA allocation for a single column, for low power
    (paper Sec. 4.3).  Each FA consumes the three addends with the largest
    |q| = |p − 0.5| (Observation 2: this maximizes the produced signals'
    (q)², i.e. minimizes their switching activity p(1−p)).  An odd column
    gains a pseudo-addend of constant 0, modelling the HA; since
    |q(0)| = 0.5 is maximal, the HA pairs the two strongest real addends in
    the first iteration, exactly as the paper prescribes.

    Properties 1 and 2 (optimality under restricted conditions) are checked
    against exhaustive search in the test suite. *)

open Dp_netlist

type tie_break =
  | Q_only
  | Prefer_early  (** break |q| ties toward early arrival, helping timing *)

(** The SC_LP total order (|q| descending, then optionally arrival, then
    net id) — shared with the counter-aware {!Gpc} strategies. *)
val compare_nets : Netlist.t -> tie_break -> Netlist.net -> Netlist.net -> int

(** Heap-based selection (O(n log n) per column): the three largest-|q|
    addends feed each FA, popped from a {!Pqueue}. *)
val reduce_column :
  ?tie_break:tie_break -> Netlist.t -> Netlist.net list ->
  Netlist.net list * Netlist.net list

(** The original sort-per-step implementation (O(n^2 log n) per column),
    retained as the reference for the decision-identity tests: both
    implementations must produce byte-identical netlists. *)
val reduce_column_reference :
  ?tie_break:tie_break -> Netlist.t -> Netlist.net list ->
  Netlist.net list * Netlist.net list
