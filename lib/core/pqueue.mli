(** Polymorphic binary min-heap, the shared selection core of the greedy
    column-reduction algorithms (SC_T, SC_LP).

    The heap is keyed by the caller's comparator.  When the comparator is a
    {e total} order (every pair of distinct elements compares non-zero —
    the allocation comparators end with a net-id tie-break, so they are),
    the pop sequence equals the fully sorted order, which is what makes the
    heap-based reducers decision-identical to the retained list-sort
    reference implementations: popping the k smallest of a pool is the same
    as sorting it and taking the first k.

    Keys must not change while an element is inside the heap.  Net
    annotations (arrival, probability) are immutable after creation, so
    closing a comparator over a [Netlist.t] is safe. *)

type 'a t

(** [dummy] fills unused capacity and is never observable. *)
val create : cmp:('a -> 'a -> int) -> dummy:'a -> 'a t

(** Floyd heap construction, O(n). *)
val of_list : cmp:('a -> 'a -> int) -> dummy:'a -> 'a list -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** O(log n). *)
val push : 'a t -> 'a -> unit

(** Remove and return the minimum, O(log n).
    @raise Invalid_argument when empty. *)
val pop : 'a t -> 'a

(** Pop everything; ascending under the comparator.  Empties the heap. *)
val drain : 'a t -> 'a list
