(* Re-export: the governor lives in [Dp_gov] (below [dp_bitmatrix] in
   the dependency order, so lowering can poll it too), but its public
   home is [Dp_core.Gov] next to the allocation loops it bounds. *)
include Dp_gov.Gov
