open Dp_netlist

(* Remove the [i]-th element in a single pass, preserving the order of the
   rest.  [len] is the caller-tracked pool length, so no O(n) count and no
   array round-trip per pick. *)
let take_random rng ~len pool =
  let i = Random.State.int rng len in
  let rec go j acc = function
    | [] -> assert false
    | x :: rest ->
      if j = i then x, List.rev_append acc rest else go (j + 1) (x :: acc) rest
  in
  go 0 [] pool

let reduce_column rng netlist addends =
  (* The FA_random baseline of Table 2: same FA/HA counts as SC_T/SC_LP,
     uniformly random input selection. *)
  let rec go pool len carries =
    match len with
    | 0 | 1 | 2 -> pool, List.rev carries
    | 3 ->
      let x, pool = take_random rng ~len:3 pool in
      let y, pool = take_random rng ~len:2 pool in
      let sum, carry = Netlist.ha netlist x y in
      (sum :: pool), List.rev (carry :: carries)
    | _ ->
      let x, pool = take_random rng ~len pool in
      let y, pool = take_random rng ~len:(len - 1) pool in
      let z, pool = take_random rng ~len:(len - 2) pool in
      let sum, carry = Netlist.fa netlist x y z in
      go (sum :: pool) (len - 2) (carry :: carries)
  in
  go addends (List.length addends) []
