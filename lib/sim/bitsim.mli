(** Bit-parallel (64-wide) logic simulation.

    One [int64] word per net packs the net's value under up to 64 distinct
    input assignments ("lanes"): bit [k] of the word is the net's value in
    lane [k].  A single forward sweep of the netlist therefore simulates 64
    vectors at the cost [Simulator.run] pays for one, because every gate
    evaluates as one or two word-wide boolean operations.

    This is the fast path behind [Equiv]'s random/exhaustive checking,
    [Monte_carlo]'s vector streams, and the fuzz oracle's differential
    simulation; the scalar [Simulator] remains the reference the test
    suite diffs lane-by-lane against. *)

open Dp_netlist

(** Word-level combinational function of one cell: packed output words
    (indexed by port) from the current packed net valuation. *)
val cell_outputs : Netlist.cell -> int64 array -> int64 array

(** Packed value of every net, indexed by net id.  [assign var bit] is the
    packed word of input bit [bit] of variable [var]; lanes the caller
    never reads may hold anything. *)
val run : Netlist.t -> assign:(string -> int -> int64) -> int64 array

(** Pack [lanes] scalar assignments (lane [k] assigns [assign k var] to
    variable [var], LSB-first as in [Simulator]) and sweep once.
    @raise Invalid_argument unless [1 <= lanes <= 64]. *)
val run_lanes :
  Netlist.t -> lanes:int -> assign:(int -> string -> int) -> int64 array

(** Value of net [net] in lane [lane]. *)
val lane_bit : int64 array -> Netlist.net -> lane:int -> bool

(** Integer value of a bus in one lane, LSB-first. *)
val bus_value : int64 array -> Netlist.net array -> lane:int -> int

(** Simulated packed values of a declared output in one lane.
    @raise Invalid_argument if the output is not declared. *)
val output_value : Netlist.t -> int64 array -> lane:int -> string -> int

(** [lane_mask lanes] has bits [0 .. lanes-1] set ([lanes <= 64]);
    masks the defined lanes of a packed word. *)
val lane_mask : int -> int64

(** Set bits of a word (SWAR, no hardware popcount dependency). *)
val popcount : int64 -> int
