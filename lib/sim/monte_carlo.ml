open Dp_netlist

type result = {
  vectors : int;
  toggle_rate : float array;  (* per net: toggles / (vectors - 1) *)
}

let random_vector rng netlist =
  (* Draw each input bit independently with its annotated 1-probability. *)
  let values = Hashtbl.create 16 in
  List.iter
    (fun (name, nets) ->
      let v = ref 0 in
      Array.iteri
        (fun bit net ->
          if Random.State.float rng 1.0 < Netlist.prob netlist net then
            v := !v lor (1 lsl bit))
        nets;
      Hashtbl.replace values name !v)
    (Netlist.inputs netlist);
  fun name -> Hashtbl.find values name

(* Both estimators stream their vectors through [Bitsim] 64 lanes at a
   time.  The per-vector random draws happen in exactly the order the
   scalar loop made them, so a given seed still produces bit-identical
   rates; only the netlist sweeps are 64-wide. *)

let lane_assigns rng netlist lanes =
  let assigns = Array.make lanes (fun (_ : string) -> 0) in
  for k = 0 to lanes - 1 do
    assigns.(k) <- random_vector rng netlist
  done;
  assigns

let toggle_rates ?(seed = 0x70661e) ~vectors netlist =
  if vectors < 2 then invalid_arg "Monte_carlo.toggle_rates: need >= 2 vectors";
  let rng = Random.State.make [| seed |] in
  let n = Netlist.net_count netlist in
  let toggles = Array.make n 0 in
  let prev_bit = Array.make n false in
  let done_ = ref 0 in
  while !done_ < vectors do
    let lanes = min 64 (vectors - !done_) in
    let assigns = lane_assigns rng netlist lanes in
    let values =
      Bitsim.run_lanes netlist ~lanes ~assign:(fun k name -> assigns.(k) name)
    in
    (* Toggles between lanes k and k+1 are the set bits of w lxor (w >> 1)
       below lane [lanes-1]; the block boundary contributes one more when
       the previous block's last lane differs from lane 0. *)
    let internal = Bitsim.lane_mask (lanes - 1) in
    let defined = Bitsim.lane_mask lanes in
    for net = 0 to n - 1 do
      let w = Int64.logand values.(net) defined in
      let t =
        Bitsim.popcount
          (Int64.logand (Int64.logxor w (Int64.shift_right_logical w 1)) internal)
      in
      let first = Int64.logand w 1L <> 0L in
      let boundary = if !done_ > 0 && prev_bit.(net) <> first then 1 else 0 in
      toggles.(net) <- toggles.(net) + t + boundary;
      prev_bit.(net) <-
        Int64.logand (Int64.shift_right_logical w (lanes - 1)) 1L <> 0L
    done;
    done_ := !done_ + lanes
  done;
  {
    vectors;
    toggle_rate =
      Array.map (fun t -> float_of_int t /. float_of_int (vectors - 1)) toggles;
  }

let measured_prob ?(seed = 0x70661e) ~vectors netlist =
  if vectors < 1 then invalid_arg "Monte_carlo.measured_prob: need >= 1 vector";
  let rng = Random.State.make [| seed |] in
  let n = Netlist.net_count netlist in
  let ones = Array.make n 0 in
  let done_ = ref 0 in
  while !done_ < vectors do
    let lanes = min 64 (vectors - !done_) in
    let assigns = lane_assigns rng netlist lanes in
    let values =
      Bitsim.run_lanes netlist ~lanes ~assign:(fun k name -> assigns.(k) name)
    in
    let defined = Bitsim.lane_mask lanes in
    for net = 0 to n - 1 do
      ones.(net) <-
        ones.(net) + Bitsim.popcount (Int64.logand values.(net) defined)
    done;
    done_ := !done_ + lanes
  done;
  Array.map (fun o -> float_of_int o /. float_of_int vectors) ones

let switching_energy netlist rates =
  (* Under temporal independence the expected toggle rate of a net with
     1-probability p is 2 p (1-p); the paper's E(x) = p(1-p) is half that,
     so the measured equivalent of E_switching uses rate / 2. *)
  let total = ref 0.0 in
  Netlist.iter_cells
    (fun id (c : Netlist.cell) ->
      let outs = Netlist.cell_output_nets netlist id in
      Array.iteri
        (fun port net ->
          let w = Dp_tech.Tech.energy (Netlist.tech netlist) c.kind ~port in
          total := !total +. (w *. rates.(net) /. 2.0))
        outs)
    netlist;
  !total
