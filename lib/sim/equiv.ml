open Dp_netlist

type mismatch = {
  assignment : (string * int) list;
  expected : int;
  actual : int;
}

let pp_mismatch ppf m =
  let pp_binding ppf (name, v) = Fmt.pf ppf "%s=%d" name v in
  Fmt.pf ppf "under %a: expected %d, netlist computed %d"
    Fmt.(list ~sep:(any ", ") pp_binding)
    m.assignment m.expected m.actual

let no_signed (_ : string) = false

let check_assignment ?(signed = no_signed) netlist expr ~output ~width alist =
  let widths =
    List.map (fun (name, nets) -> name, Array.length nets) (Netlist.inputs netlist)
  in
  let interpret x =
    let raw = List.assoc x alist in
    if signed x then
      Dp_expr.Eval.signed_of_pattern ~width:(List.assoc x widths) raw
    else raw
  in
  let expected = Dp_expr.Eval.eval_mod ~width interpret expr in
  let actual =
    Simulator.eval_output netlist ~assign:(fun x -> List.assoc x alist) output
  in
  if expected = actual then Ok () else Error { assignment = alist; expected; actual }

let input_widths netlist =
  List.map (fun (name, nets) -> name, Array.length nets) (Netlist.inputs netlist)

(* [Random.State.int] only accepts bounds below 2^30, so wide (crypto-
   limb) operands stitch several 24-bit draws; widths below 30 keep the
   single-draw path so existing seeds reproduce their historic vector
   streams. *)
let rand_bits rng w =
  if w < 30 then Random.State.int rng (1 lsl w)
  else begin
    let acc = ref 0 and got = ref 0 in
    while !got < w do
      let take = min 24 (w - !got) in
      acc := !acc lor (Random.State.int rng (1 lsl take) lsl !got);
      got := !got + take
    done;
    !acc
  end

let random_assignment rng widths =
  List.map (fun (name, w) -> name, rand_bits rng w) widths

(* Batched differential core: simulate up to 64 assignments per netlist
   sweep via [Bitsim], then compare each lane (in order, so the reported
   mismatch is the same first failure the scalar loop would find) against
   the expression evaluator.  [next i] produces the [i]-th assignment. *)
let check_batched ?(signed = no_signed) netlist expr ~output ~width ~total next =
  let widths = input_widths netlist in
  let out_nets = Netlist.find_output netlist output in
  let gov = Netlist.gov netlist in
  let rec block start =
    (match gov with
    | Some g -> Dp_gov.Gov.check ~site:Dp_gov.Gov.Sim g
    | None -> ());
    if start >= total then Ok ()
    else begin
      let lanes = min 64 (total - start) in
      let alists = Array.make lanes [] in
      for k = 0 to lanes - 1 do
        alists.(k) <- next (start + k)
      done;
      let values =
        Bitsim.run_lanes netlist ~lanes
          ~assign:(fun lane x -> List.assoc x alists.(lane))
      in
      let rec lane k =
        if k >= lanes then block (start + lanes)
        else begin
          let alist = alists.(k) in
          let interpret x =
            let raw = List.assoc x alist in
            if signed x then
              Dp_expr.Eval.signed_of_pattern ~width:(List.assoc x widths) raw
            else raw
          in
          let expected = Dp_expr.Eval.eval_mod ~width interpret expr in
          let actual = Bitsim.bus_value values out_nets ~lane:k in
          if expected = actual then lane (k + 1)
          else Error { assignment = alist; expected; actual }
        end
      in
      lane 0
    end
  in
  block 0

let check_random ?(seed = 0xC5A) ?signed ~trials netlist expr ~output ~width =
  let rng = Random.State.make [| seed |] in
  let widths = input_widths netlist in
  (* Draw every assignment up front, in the same order the scalar loop
     drew them, so seeds keep reproducing the same vector streams. *)
  let alists = Array.make (max trials 1) [] in
  for i = 0 to trials - 1 do
    alists.(i) <- random_assignment rng widths
  done;
  check_batched ?signed netlist expr ~output ~width ~total:trials (fun i ->
      alists.(i))

let check_exhaustive ?signed netlist expr ~output ~width =
  let widths = input_widths netlist in
  let total_bits = List.fold_left (fun acc (_, w) -> acc + w) 0 widths in
  if total_bits > 22 then
    invalid_arg "Equiv.check_exhaustive: input space too large";
  let rec split code = function
    | [] -> []
    | (name, w) :: rest -> (name, code land Dp_expr.Eval.mask w) :: split (code lsr w) rest
  in
  check_batched ?signed netlist expr ~output ~width ~total:(1 lsl total_bits)
    (fun code -> split code widths)
