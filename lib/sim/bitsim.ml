open Dp_netlist

let lane_mask lanes =
  if lanes >= 64 then Int64.minus_one
  else Int64.sub (Int64.shift_left 1L lanes) 1L

(* SWAR popcount; OCaml has no Int64 popcount primitive. *)
let popcount x =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    add
      (logand x 0x3333333333333333L)
      (logand (shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

(* 64-lane FA/HA blocks, used to evaluate the counters through their
   canonical exactly-synthesized bodies (the [Dp_counters] recipes) —
   deliberately NOT via popcount, so that [Simulator]'s arithmetic
   semantics and this boolean evaluation cross-check each other. *)
let fa64 a b c =
  let sum = Int64.logxor (Int64.logxor a b) c in
  let carry =
    Int64.logor (Int64.logand a b)
      (Int64.logor (Int64.logand a c) (Int64.logand b c))
  in
  (sum, carry)

let ha64 a b = (Int64.logxor a b, Int64.logand a b)

let cell_outputs (c : Netlist.cell) (values : int64 array) =
  let v i = values.(c.inputs.(i)) in
  match c.kind with
  | Dp_tech.Cell_kind.Fa ->
    let a = v 0 and b = v 1 and cin = v 2 in
    let sum = Int64.logxor (Int64.logxor a b) cin in
    let carry =
      Int64.logor (Int64.logand a b)
        (Int64.logor (Int64.logand a cin) (Int64.logand b cin))
    in
    [| sum; carry |]
  | Dp_tech.Cell_kind.Ha ->
    let a = v 0 and b = v 1 in
    [| Int64.logxor a b; Int64.logand a b |]
  | Dp_tech.Cell_kind.C53 ->
    let s, c1 = fa64 (v 0) (v 1) (v 2) in
    let s0, c2 = fa64 s (v 3) (v 4) in
    let s1, s2 = ha64 c1 c2 in
    [| s0; s1; s2 |]
  | Dp_tech.Cell_kind.C63 ->
    let s, c1 = fa64 (v 0) (v 1) (v 2) in
    let u, c2 = fa64 (v 3) (v 4) (v 5) in
    let s0, c3 = ha64 s u in
    let s1, s2 = fa64 c1 c2 c3 in
    [| s0; s1; s2 |]
  | Dp_tech.Cell_kind.C73 ->
    let s, c1 = fa64 (v 0) (v 1) (v 2) in
    let u, c2 = fa64 (v 3) (v 4) (v 5) in
    let s0, c3 = fa64 s u (v 6) in
    let s1, s2 = fa64 c1 c2 c3 in
    [| s0; s1; s2 |]
  | Dp_tech.Cell_kind.C42 ->
    let u, cout = fa64 (v 0) (v 1) (v 2) in
    let sum, carry = fa64 u (v 3) (v 4) in
    [| sum; carry; cout |]
  | Dp_tech.Cell_kind.And_n n ->
    let acc = ref Int64.minus_one in
    for i = 0 to n - 1 do
      acc := Int64.logand !acc (v i)
    done;
    [| !acc |]
  | Dp_tech.Cell_kind.Or_n n ->
    let acc = ref 0L in
    for i = 0 to n - 1 do
      acc := Int64.logor !acc (v i)
    done;
    [| !acc |]
  | Dp_tech.Cell_kind.Xor_n n ->
    let acc = ref 0L in
    for i = 0 to n - 1 do
      acc := Int64.logxor !acc (v i)
    done;
    [| !acc |]
  | Dp_tech.Cell_kind.Not -> [| Int64.lognot (v 0) |]
  | Dp_tech.Cell_kind.Buf -> [| v 0 |]

let run netlist ~assign =
  let n = Netlist.net_count netlist in
  let values = Array.make n 0L in
  let gov = Netlist.gov netlist in
  (* Net ids are topologically ordered (see [Simulator.run]); one forward
     pass evaluates all 64 lanes of every net. *)
  for net = 0 to n - 1 do
    (match gov with
    | Some g -> Dp_gov.Gov.check ~site:Dp_gov.Gov.Sim g
    | None -> ());
    match Netlist.driver netlist net with
    | Netlist.From_input { var; bit } -> values.(net) <- assign var bit
    | Netlist.From_const b ->
      values.(net) <- (if b then Int64.minus_one else 0L)
    | Netlist.From_cell { cell; port } ->
      let c = Netlist.cell netlist cell in
      values.(net) <- (cell_outputs c values).(port)
  done;
  values

let run_lanes netlist ~lanes ~assign =
  if lanes < 1 || lanes > 64 then
    invalid_arg "Bitsim.run_lanes: lanes must be within [1, 64]";
  let packed = Hashtbl.create 16 in
  List.iter
    (fun (var, nets) ->
      let vals = Array.make lanes 0 in
      for k = 0 to lanes - 1 do
        vals.(k) <- assign k var
      done;
      let words =
        Array.init (Array.length nets) (fun bit ->
            let w = ref 0L in
            for k = 0 to lanes - 1 do
              if (vals.(k) lsr bit) land 1 = 1 then
                w := Int64.logor !w (Int64.shift_left 1L k)
            done;
            !w)
      in
      Hashtbl.replace packed var words)
    (Netlist.inputs netlist);
  run netlist ~assign:(fun var bit -> (Hashtbl.find packed var).(bit))

let lane_bit values net ~lane =
  Int64.logand (Int64.shift_right_logical values.(net) lane) 1L <> 0L

let bus_value values nets ~lane =
  let acc = ref 0 in
  Array.iteri
    (fun bit net -> if lane_bit values net ~lane then acc := !acc lor (1 lsl bit))
    nets;
  !acc

let output_value netlist values ~lane name =
  bus_value values (Netlist.find_output netlist name) ~lane
