open Dp_netlist

let cell_outputs (c : Netlist.cell) values =
  let v i = values.(c.inputs.(i)) in
  match c.kind with
  | Dp_tech.Cell_kind.Fa ->
    let a = v 0 and b = v 1 and cin = v 2 in
    let sum = a <> b <> cin in
    let carry = (a && b) || (a && cin) || (b && cin) in
    [| sum; carry |]
  | Dp_tech.Cell_kind.Ha ->
    let a = v 0 and b = v 1 in
    [| a <> b; a && b |]
  | Dp_tech.Cell_kind.C53 | Dp_tech.Cell_kind.C63 | Dp_tech.Cell_kind.C73 ->
    (* arithmetic semantics: output the binary digits of the popcount;
       [Bitsim] evaluates the certified boolean recipes instead, so the
       two simulators cross-check the counter bodies *)
    let n = ref 0 in
    for i = 0 to Array.length c.inputs - 1 do
      if v i then incr n
    done;
    [| !n land 1 = 1; (!n lsr 1) land 1 = 1; (!n lsr 2) land 1 = 1 |]
  | Dp_tech.Cell_kind.C42 ->
    let x0 = v 0 and x1 = v 1 and x2 = v 2 and x3 = v 3 and ci = v 4 in
    let t = x0 <> x1 <> x2 in
    let cout = (x0 && x1) || (x0 && x2) || (x1 && x2) in
    let sum = t <> x3 <> ci in
    let carry = (t && x3) || (t && ci) || (x3 && ci) in
    [| sum; carry; cout |]
  | Dp_tech.Cell_kind.And_n n ->
    let acc = ref true in
    for i = 0 to n - 1 do
      acc := !acc && v i
    done;
    [| !acc |]
  | Dp_tech.Cell_kind.Or_n n ->
    let acc = ref false in
    for i = 0 to n - 1 do
      acc := !acc || v i
    done;
    [| !acc |]
  | Dp_tech.Cell_kind.Xor_n n ->
    let acc = ref false in
    for i = 0 to n - 1 do
      acc := !acc <> v i
    done;
    [| !acc |]
  | Dp_tech.Cell_kind.Not -> [| not (v 0) |]
  | Dp_tech.Cell_kind.Buf -> [| v 0 |]

let run netlist ~assign =
  let n = Netlist.net_count netlist in
  let values = Array.make n false in
  (* Net ids are topologically ordered: a cell's inputs precede its outputs,
     so a single forward pass evaluates everything.  Both ports of an FA/HA
     are recomputed when each is reached; that is cheap and keeps the pass
     trivially correct. *)
  for net = 0 to n - 1 do
    match Netlist.driver netlist net with
    | Netlist.From_input { var; bit } ->
      values.(net) <- (assign var lsr bit) land 1 = 1
    | Netlist.From_const b -> values.(net) <- b
    | Netlist.From_cell { cell; port } ->
      let c = Netlist.cell netlist cell in
      values.(net) <- (cell_outputs c values).(port)
  done;
  values

let bus_value values nets =
  let acc = ref 0 in
  Array.iteri (fun bit net -> if values.(net) then acc := !acc lor (1 lsl bit)) nets;
  !acc

let output_value netlist values name =
  bus_value values (Netlist.find_output netlist name)

let eval_output netlist ~assign name =
  output_value netlist (run netlist ~assign) name
