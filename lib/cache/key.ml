open Dp_expr

type t = {
  expr : Ast.t;
  env : Env.t;
  width : int;
  strategy : Dp_flow.Strategy.t;
  adder : Dp_adders.Adder.kind;
  lower_config : Dp_bitmatrix.Lower.config;
  check_level : Dp_verify.Lint.check_level;
  tech : Dp_tech.Tech.t;
}

let make ?(tech = Dp_tech.Tech.lcb_like) ?(adder = Dp_adders.Adder.Cla)
    ?(lower_config = Dp_bitmatrix.Lower.default_config)
    ?(check_level = Dp_verify.Lint.Off) ?width strategy env expr =
  let expr = Canon.canonicalize expr in
  (* The width is resolved against the *canonical* expression, so every
     request in the same canonical class keys (and synthesizes)
     identically even when no explicit width is given. *)
  let width =
    match width with Some w -> w | None -> Range.natural_width env expr
  in
  { expr; env; width; strategy; adder; lower_config; check_level; tech }

(* %h prints the exact bit pattern of a float, so the fingerprint never
   depends on decimal rounding. *)
let add_float buf f = Buffer.add_string buf (Printf.sprintf " %h" f)

let add_tech buf (t : Dp_tech.Tech.t) =
  Buffer.add_string buf "tech ";
  Buffer.add_string buf t.name;
  List.iter (add_float buf)
    [
      t.fa_sum_delay; t.fa_carry_delay; t.ha_sum_delay; t.ha_carry_delay;
      t.and2_delay; t.or2_delay; t.xor2_delay; t.not_delay; t.buf_delay;
      t.fa_area; t.ha_area; t.and2_area; t.or2_area; t.xor2_area;
      t.not_area; t.buf_area; t.fa_sum_energy; t.fa_carry_energy;
      t.ha_sum_energy; t.ha_carry_energy; t.gate_energy; t.counter_fusion;
    ];
  Buffer.add_char buf '\n'

let fingerprint k =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "dpsyn-key/1\n";
  Buffer.add_string buf ("expr " ^ Ast.to_string k.expr ^ "\n");
  Buffer.add_string buf (Printf.sprintf "width %d\n" k.width);
  Buffer.add_string buf ("strategy " ^ Dp_flow.Strategy.name k.strategy ^ "\n");
  Buffer.add_string buf ("adder " ^ Dp_adders.Adder.name k.adder ^ "\n");
  Buffer.add_string buf
    (match k.lower_config.recoding with
    | Dp_bitmatrix.Lower.Csd -> "recoding csd\n"
    | Dp_bitmatrix.Lower.Binary -> "recoding binary\n");
  Buffer.add_string buf
    (match k.lower_config.multiplier_style with
    | Dp_bitmatrix.Lower.And_array -> "multiplier and-array\n"
    | Dp_bitmatrix.Lower.Booth -> "multiplier booth\n");
  Buffer.add_string buf
    ("check " ^ Dp_verify.Lint.check_level_name k.check_level ^ "\n");
  add_tech buf k.tech;
  (* Only the variables the expression references: an unused binding in
     the environment must not split the cache entry.  [Ast.vars] is
     sorted, so the fingerprint is independent of binding order too. *)
  List.iter
    (fun name ->
      let info = Env.find name k.env in
      Buffer.add_string buf
        (Printf.sprintf "var %s %d %b" name info.width info.signed);
      Array.iter (add_float buf) info.arrival;
      Array.iter (add_float buf) info.prob;
      Buffer.add_char buf '\n')
    (Ast.vars k.expr);
  Buffer.contents buf

let digest k = Digest.to_hex (Digest.string (fingerprint k))
