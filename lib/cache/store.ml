type entry = {
  fingerprint : string;
  result : Dp_flow.Synth.result;
  verilog : string;
}

(* Doubly-linked LRU node; [head] is most recently used. *)
type node = {
  digest : string;
  entry : entry;
  mutable prev : node option;
  mutable next : node option;
}

type stats = {
  hits : int;
  disk_hits : int;
  misses : int;
  evictions : int;
  corrupt : int;
  stores : int;
  entries : int;
}

type t = {
  capacity : int;
  dir : string option;
  table : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable size : int;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable corrupt : int;
  mutable stores : int;
  lock : Mutex.t;
}

let create ?(capacity = 256) ?dir () =
  if capacity < 1 then invalid_arg "Store.create: capacity must be >= 1";
  (match dir with
  | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
  | _ -> ());
  {
    capacity;
    dir;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    size = 0;
    hits = 0;
    disk_hits = 0;
    misses = 0;
    evictions = 0;
    corrupt = 0;
    stores = 0;
    lock = Mutex.create ();
  }

let stats t =
  Mutex.protect t.lock @@ fun () ->
  {
    hits = t.hits;
    disk_hits = t.disk_hits;
    misses = t.misses;
    evictions = t.evictions;
    corrupt = t.corrupt;
    stores = t.stores;
    entries = t.size;
  }

(* ------------------------------------------------------------------ *)
(* Intrusive LRU list (all under [lock]) *)

let detach t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  detach t n;
  push_front t n

let insert t digest entry =
  (match Hashtbl.find_opt t.table digest with
  | Some old ->
    detach t old;
    Hashtbl.remove t.table digest;
    t.size <- t.size - 1
  | None -> ());
  let n = { digest; entry; prev = None; next = None } in
  Hashtbl.replace t.table digest n;
  push_front t n;
  t.size <- t.size + 1;
  while t.size > t.capacity do
    match t.tail with
    | None -> t.size <- t.capacity (* unreachable *)
    | Some lru ->
      detach t lru;
      Hashtbl.remove t.table lru.digest;
      t.size <- t.size - 1;
      t.evictions <- t.evictions + 1
  done

(* ------------------------------------------------------------------ *)
(* On-disk content-addressed entries.

   File layout: a magic line, the hex MD5 of the marshalled body, then
   the body itself.  The checksum rejects truncation and bit-rot before
   [Marshal.from_string] ever runs on the bytes; the fingerprint match
   rejects digest collisions and misfiled entries; the lint sweep
   rejects structurally corrupt netlists that survive both.  Every
   failure mode degrades to a cache miss. *)

let magic = "dpsyn-cache/1\n"

let entry_path dir digest = Filename.concat dir (digest ^ ".dpc")

(* Cross-process discipline for the shared on-disk store.  Shard
   processes share one cache directory, so two writers may race on the
   same digest.  Two independent defenses:

   - every writer stages into a tmp name unique to (pid, counter), so
     concurrent writers can never interleave bytes in one file;
   - an advisory per-digest lock file serializes the write+publish
     critical section across processes, so renames are ordered and a
     writer never publishes over a concurrent writer mid-flight.

   Either alone keeps entries untorn (rename is atomic); together they
   also keep the store's write ordering sane under contention.  The lock
   is strictly best-effort: if the lock file cannot be opened or locked
   the write proceeds unlocked — the unique tmp + atomic rename still
   guarantees readers only ever see whole, checksummed entries. *)

let with_digest_lock dir digest f =
  let lock_path = Filename.concat dir (digest ^ ".lock") in
  match Unix.openfile lock_path [ O_WRONLY; O_CREAT; O_CLOEXEC ] 0o644 with
  | exception Unix.Unix_error _ -> f ()
  | fd ->
    let locked = try Unix.lockf fd Unix.F_LOCK 0; true with _ -> false in
    Fun.protect
      ~finally:(fun () ->
        (if locked then try Unix.lockf fd Unix.F_ULOCK 0 with _ -> ());
        try Unix.close fd with _ -> ())
      f

let tmp_counter = Atomic.make 0

let write_disk t digest entry =
  match t.dir with
  | None -> ()
  | Some dir -> (
    let body = Marshal.to_string entry [] in
    let path = entry_path dir digest in
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Atomic.fetch_and_add tmp_counter 1)
    in
    try
      with_digest_lock dir digest @@ fun () ->
      Out_channel.with_open_bin tmp (fun oc ->
          output_string oc magic;
          output_string oc (Digest.to_hex (Digest.string body));
          output_char oc '\n';
          output_string oc body);
      (* Atomic publish: a reader sees the old entry, the new entry, or
         no entry — never a half-written one. *)
      Sys.rename tmp path
    with Sys_error _ | Unix.Unix_error _ -> ( try Sys.remove tmp with _ -> ()))

let lint_ok netlist =
  match Dp_verify.Lint.significant (Dp_verify.Lint.run netlist) with
  | [] -> true
  | _ :: _ -> false
  | exception _ -> false

let read_disk t digest ~fingerprint =
  match t.dir with
  | None -> None
  | Some dir -> (
    let path = entry_path dir digest in
    if not (Sys.file_exists path) then None
    else
      let parsed =
        try
          let raw = In_channel.with_open_bin path In_channel.input_all in
          let mlen = String.length magic in
          if
            String.length raw < mlen + 33
            || not (String.equal (String.sub raw 0 mlen) magic)
          then None
          else
            let sum = String.sub raw mlen 32 in
            let body = String.sub raw (mlen + 33) (String.length raw - mlen - 33) in
            if not (String.equal sum (Digest.to_hex (Digest.string body))) then
              None
            else
              let (entry : entry) = Marshal.from_string body 0 in
              if
                String.equal entry.fingerprint fingerprint
                && lint_ok entry.result.netlist
              then Some entry
              else None
        with _ -> None
      in
      match parsed with
      | Some _ as ok -> ok
      | None ->
        (* Corrupt (or misfiled) entry: drop it so it cannot shadow a
           future good write, and account for it. *)
        t.corrupt <- t.corrupt + 1;
        (try Sys.remove path with Sys_error _ -> ());
        None)

(* ------------------------------------------------------------------ *)

let find t key =
  let digest = Key.digest key in
  let fingerprint = Key.fingerprint key in
  Mutex.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.table digest with
  | Some n when String.equal n.entry.fingerprint fingerprint ->
    touch t n;
    t.hits <- t.hits + 1;
    Some n.entry
  | _ -> (
    match read_disk t digest ~fingerprint with
    | Some entry ->
      t.disk_hits <- t.disk_hits + 1;
      insert t digest entry;
      Some entry
    | None ->
      t.misses <- t.misses + 1;
      None)

let add t key entry =
  let digest = Key.digest key in
  (Mutex.protect t.lock @@ fun () ->
   insert t digest entry;
   t.stores <- t.stores + 1);
  (* Disk write happens outside the in-memory lock: it can block on the
     cross-process digest lock, and stalling every same-process lookup
     behind another shard's disk write would defeat sharding. *)
  write_disk t digest entry

(* ------------------------------------------------------------------ *)
(* Offline store verification (the [dpsyn fsck] subcommand).

   Walks a store directory without a live [t]: every [.dpc] entry is
   re-checked exactly as the read path would check it (magic, checksum,
   unmarshal, lint) plus one check the read path cannot do — that the
   file's name matches the MD5 of the fingerprint {e inside} it, so a
   misfiled entry is caught even when no request ever asks for that
   digest.  Leftover [.tmp.*] staging files older than [tmp_age_s] are
   orphans (a crashed writer); [.lock] files whose entry is gone are
   stale.  With [prune] set, every finding is removed. *)

type fsck_report = {
  scanned : int;
  valid : int;
  fsck_corrupt : int;
  misfiled : int;
  orphaned_tmp : int;
  stale_locks : int;
  pruned : int;
}

let fsck ?(prune = false) ?(tmp_age_s = 60.0) ~dir () =
  let now = Unix.gettimeofday () in
  let names =
    match Sys.readdir dir with
    | names -> Array.to_list names
    | exception Sys_error _ -> []
  in
  let scanned = ref 0
  and valid = ref 0
  and corrupt = ref 0
  and misfiled = ref 0
  and orphaned_tmp = ref 0
  and stale_locks = ref 0
  and pruned = ref 0 in
  let remove path =
    match Sys.remove path with
    | () -> incr pruned
    | exception Sys_error _ -> ()
  in
  let is_hex32 s =
    String.length s = 32
    && String.for_all
         (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
         s
  in
  let check_entry name =
    incr scanned;
    let path = Filename.concat dir name in
    let digest = Filename.chop_suffix name ".dpc" in
    let verdict =
      try
        let raw = In_channel.with_open_bin path In_channel.input_all in
        let mlen = String.length magic in
        if
          String.length raw < mlen + 33
          || not (String.equal (String.sub raw 0 mlen) magic)
        then `Corrupt
        else
          let sum = String.sub raw mlen 32 in
          let body =
            String.sub raw (mlen + 33) (String.length raw - mlen - 33)
          in
          if not (String.equal sum (Digest.to_hex (Digest.string body))) then
            `Corrupt
          else
            let (entry : entry) = Marshal.from_string body 0 in
            if
              not
                (String.equal digest
                   (Digest.to_hex (Digest.string entry.fingerprint)))
            then `Misfiled
            else if lint_ok entry.result.netlist then `Valid
            else `Corrupt
      with _ -> `Corrupt
    in
    (* Pruning an entry also drops its companion lock file (inside the
       critical section — unlink-while-held is fine), or the prune
       itself would manufacture a stale lock. *)
    let prune_entry () =
      with_digest_lock dir digest (fun () ->
          remove path;
          try Sys.remove (Filename.concat dir (digest ^ ".lock"))
          with Sys_error _ -> ())
    in
    match verdict with
    | `Valid -> incr valid
    | `Corrupt ->
      incr corrupt;
      if prune then prune_entry ()
    | `Misfiled ->
      incr misfiled;
      if prune then prune_entry ()
  in
  List.iter
    (fun name ->
      let path = Filename.concat dir name in
      if Filename.check_suffix name ".dpc" then check_entry name
      else if
        (* A staging file looks like <digest>.dpc.tmp.<pid>.<n>; anything
           with ".tmp." in it that has sat around past the grace window
           was left by a crashed writer — no live writer stages that
           long. *)
        let rec has_tmp i =
          i + 5 <= String.length name
          && (String.equal (String.sub name i 5) ".tmp." || has_tmp (i + 1))
        in
        has_tmp 0
      then begin
        match Unix.stat path with
        | { Unix.st_mtime; _ } when now -. st_mtime > tmp_age_s ->
          incr orphaned_tmp;
          if prune then remove path
        | _ | (exception Unix.Unix_error _) -> ()
      end
      else if Filename.check_suffix name ".lock" then begin
        let digest = Filename.chop_suffix name ".lock" in
        if
          is_hex32 digest
          && not (Sys.file_exists (Filename.concat dir (digest ^ ".dpc")))
        then begin
          incr stale_locks;
          if prune then remove path
        end
      end)
    names;
  {
    scanned = !scanned;
    valid = !valid;
    fsck_corrupt = !corrupt;
    misfiled = !misfiled;
    orphaned_tmp = !orphaned_tmp;
    stale_locks = !stale_locks;
    pruned = !pruned;
  }

let mem_digests t =
  Mutex.protect t.lock @@ fun () ->
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.digest :: acc) n.next
  in
  go [] t.head

let dir t = t.dir

let invalidate_memory t =
  Mutex.protect t.lock @@ fun () ->
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.size <- 0
