(** Cache keys: the full identity of a synthesis request.

    The paper's FA_AOT/FA_ALP results depend on per-operand arrival and
    probability profiles, so a correct cache key covers the {e whole}
    request: canonical expression, every referenced variable's
    width/signedness/arrival/probability profile, the technology
    constants, the strategy, the final adder, the lowering configuration,
    the resolved output width, and the lint gate level.  Anything less
    would serve a netlist synthesized under different prescribed arrival
    times — the sensitivity studied by Brenner & Hermann — as if it were
    equivalent. *)

type t = {
  expr : Dp_expr.Ast.t;  (** canonical form (see {!Canon.canonicalize}) *)
  env : Dp_expr.Env.t;
  width : int;  (** resolved: explicit, or natural width of the canonical expr *)
  strategy : Dp_flow.Strategy.t;
  adder : Dp_adders.Adder.kind;
  lower_config : Dp_bitmatrix.Lower.config;
  check_level : Dp_verify.Lint.check_level;
  tech : Dp_tech.Tech.t;
}

(** Canonicalizes the expression and resolves the width.  Defaults match
    [dpsyn synth]: lcb_like technology, CLA final adder, CSD/AND-array
    lowering, lint gate off.
    @raise Invalid_argument if the environment does not cover the
    expression (callers pre-check with [Env.check_covers_res]). *)
val make :
  ?tech:Dp_tech.Tech.t -> ?adder:Dp_adders.Adder.kind ->
  ?lower_config:Dp_bitmatrix.Lower.config ->
  ?check_level:Dp_verify.Lint.check_level -> ?width:int ->
  Dp_flow.Strategy.t -> Dp_expr.Env.t -> Dp_expr.Ast.t -> t

(** Stable, human-readable serialization of every field the digest
    covers.  Floats print as [%h] (exact bit patterns); variables appear
    in sorted order and only when the expression references them. *)
val fingerprint : t -> string

(** Hex MD5 of {!fingerprint} — the content address of the entry. *)
val digest : t -> string
