(** The serving core: one cached synthesis request → outcome.

    This is the cache-aware path shared by the [dpsyn serve] server, the
    [--json] CLI surface and the batch-latency benchmarks.  Unlike
    [Synth.run], it synthesizes the {e canonical} form of the expression
    at the key's resolved width, so every request in the same canonical
    class — however its operands were ordered — maps to one cache entry
    and one byte-identical netlist. *)

type request = {
  expr : Dp_expr.Ast.t;
  env : Dp_expr.Env.t;
  width : int option;
  strategy : Dp_flow.Strategy.t;
  adder : Dp_adders.Adder.kind;
  lower_config : Dp_bitmatrix.Lower.config;
  check_level : Dp_verify.Lint.check_level;
  tech : Dp_tech.Tech.t;
}

(** Request with [dpsyn synth]'s defaults. *)
val request :
  ?width:int option -> ?strategy:Dp_flow.Strategy.t ->
  ?adder:Dp_adders.Adder.kind ->
  ?lower_config:Dp_bitmatrix.Lower.config ->
  ?check_level:Dp_verify.Lint.check_level -> ?tech:Dp_tech.Tech.t ->
  Dp_expr.Env.t -> Dp_expr.Ast.t -> request

type outcome = {
  result : Dp_flow.Synth.result;
  verilog : string;  (** byte-identical across cached and fresh serves *)
  digest : string;  (** the entry's content address *)
  width : int;  (** resolved output width *)
  cached : bool;
}

(** Serve one request: cache lookup (when [store] is given), else
    synthesis + insertion.  Failures are typed diagnostics exactly as in
    [Synth.run_res], plus [DP-ENV003] for an environment that does not
    cover the expression. *)
val run :
  ?store:Store.t -> request -> (outcome, Dp_diag.Diag.t) Stdlib.result
