open Dp_expr

(* [Ast.t] is a pure tree of strings and ints, so the polymorphic
   compare is a deterministic total order — exactly what the sort needs. *)
let compare_expr (a : Ast.t) (b : Ast.t) = Stdlib.compare a b

(* Negation with the two local normalizations the rebuild steps rely on:
   no double negation, and no negated constant (the sign folds in). *)
let neg_c : Ast.t -> Ast.t = function
  | Ast.Neg e -> e
  | Ast.Const c -> Ast.Const (-c)
  | e -> Ast.Neg e

(* A term of a flattened sum: [true] means the term is subtracted. *)
let flip sign = not sign

let rec canon (e : Ast.t) : Ast.t =
  match e with
  | Ast.Var _ | Ast.Const _ -> e
  | Ast.Pow (a, n) -> Ast.Pow (canon a, n)
  | Ast.Neg _ | Ast.Add _ | Ast.Sub _ -> canon_sum e
  | Ast.Mul _ -> canon_product e

(* Walk the +/-/Neg spine collecting signed terms; leaves are
   canonicalized recursively.  A canonicalized leaf can itself normalize
   to a sum (e.g. [1*(a + b)] collapsing to [a + b]), so [push_term]
   re-flattens it — a canonical sum never nests Add/Sub/Neg (or a
   negative constant) inside its term list, which is what makes the
   whole pass idempotent. *)
and push_term sign acc t =
  match t with
  | Ast.Add (a, b) -> push_term sign (push_term sign acc a) b
  | Ast.Sub (a, b) -> push_term (flip sign) (push_term sign acc a) b
  | Ast.Neg a -> push_term (flip sign) acc a
  | Ast.Const c when c < 0 -> (flip sign, Ast.Const (-c)) :: acc
  | t -> (sign, t) :: acc

and sum_terms sign acc e =
  match e with
  | Ast.Add (a, b) -> sum_terms sign (sum_terms sign acc a) b
  | Ast.Sub (a, b) -> sum_terms (flip sign) (sum_terms sign acc a) b
  | Ast.Neg a -> sum_terms (flip sign) acc a
  | leaf -> push_term sign acc (canon leaf)

and canon_sum e =
  let terms =
    List.sort
      (fun (sa, ta) (sb, tb) ->
        match compare_expr ta tb with
        | 0 -> Bool.compare sa sb  (* equal terms: added before subtracted *)
        | c -> c)
      (sum_terms false [] e)
    (* x + 0 = x = x - 0: zero terms never affect the value, so they must
       not split the canonical class either *)
    |> List.filter (fun (_, t) -> t <> Ast.Const 0)
  in
  let pos = List.filter_map (fun (s, t) -> if s then None else Some t) terms in
  let neg = List.filter_map (fun (s, t) -> if s then Some t else None) terms in
  match (pos, neg) with
  | [], [] -> Ast.Const 0 (* every term was a zero *)
  | p :: ps, neg ->
    List.fold_left (fun acc n -> Ast.Sub (acc, n))
      (List.fold_left (fun acc p -> Ast.Add (acc, p)) p ps)
      neg
  | [], n :: ns ->
    neg_c (List.fold_left (fun acc n -> Ast.Add (acc, n)) n ns)

(* Walk the Mul spine collecting factors; negations (and constant signs)
   hoist out of the product as a parity bit.  As with sums, a
   canonicalized leaf can normalize to a product (e.g. [(a*b + 0)]
   collapsing to [a*b]), so [push_factor] re-flattens it. *)
and push_factor (negated, acc) f =
  match f with
  | Ast.Mul (a, b) -> push_factor (push_factor (negated, acc) a) b
  | Ast.Neg a -> push_factor (flip negated, acc) a
  | Ast.Const c when c < 0 -> (flip negated, Ast.Const (-c) :: acc)
  | f -> (negated, f :: acc)

and product_factors (negated, acc) e =
  match e with
  | Ast.Mul (a, b) -> product_factors (product_factors (negated, acc) a) b
  | Ast.Neg a -> product_factors (flip negated, acc) a
  | leaf -> push_factor (negated, acc) (canon leaf)

and canon_product e =
  let negated, factors = product_factors (false, []) e in
  if List.mem (Ast.Const 0) factors then Ast.Const 0
  else
    (* unit factors are the multiplicative analogue of zero terms *)
    match
      List.sort compare_expr (List.filter (fun f -> f <> Ast.Const 1) factors)
    with
    | [] -> Ast.Const (if negated then -1 else 1)
    | f :: fs ->
      let body = List.fold_left (fun acc f -> Ast.Mul (acc, f)) f fs in
      if negated then neg_c body else body

let canonicalize = canon
