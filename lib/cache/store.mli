(** Content-addressed netlist cache: an in-memory LRU in front of an
    optional on-disk store.

    Entries are addressed by {!Key.digest} and carry the full synthesis
    result plus its Verilog emission, so a hit reproduces a fresh
    [Synth.run] byte-for-byte.  Disk entries are checksummed, matched
    against the request's full {!Key.fingerprint} (a digest collision or
    a misfiled entry is never served), and lint-checked with
    [Dp_verify.Lint] on load — {e every} corruption mode degrades to a
    cache miss, never to a wrong netlist.  All operations are
    thread-safe. *)

type entry = {
  fingerprint : string;  (** the {!Key.fingerprint} the entry was stored under *)
  result : Dp_flow.Synth.result;
  verilog : string;  (** [Verilog.emit result.netlist], captured at store time *)
}

type stats = {
  hits : int;  (** in-memory LRU hits *)
  disk_hits : int;  (** misses in memory served from disk (then promoted) *)
  misses : int;  (** full misses — the caller synthesized *)
  evictions : int;  (** LRU evictions from memory (disk copies survive) *)
  corrupt : int;  (** disk entries rejected by checksum/fingerprint/lint *)
  stores : int;  (** successful {!add} calls *)
  entries : int;  (** current in-memory entry count *)
}

type t

(** [create ~capacity ~dir ()] — [capacity] bounds the in-memory LRU
    (default 256 entries); [dir] (created if missing) enables the
    on-disk store.  @raise Invalid_argument on a capacity < 1. *)
val create : ?capacity:int -> ?dir:string -> unit -> t

(** Lookup; promotes disk hits into memory and updates LRU order. *)
val find : t -> Key.t -> entry option

(** Insert (memory, and disk when enabled; disk write failures are
    silently degraded — the cache is best-effort by design).  Disk
    writes are safe across processes sharing one directory: each writer
    stages into a unique temp file, takes an advisory per-digest lock,
    and publishes with an atomic rename — concurrent writers on the same
    digest leave exactly one whole, checksummed entry, and a reader
    racing a writer sees the old entry, the new entry, or none. *)
val add : t -> Key.t -> entry -> unit

val stats : t -> stats

(** {!fsck}'s findings over one store directory. *)
type fsck_report = {
  scanned : int;  (** [.dpc] entries examined *)
  valid : int;  (** entries that pass every check *)
  fsck_corrupt : int;
      (** bad magic, checksum mismatch, unmarshal failure, or a netlist
          that fails the lint sweep — exactly the read path's rejects *)
  misfiled : int;
      (** internally whole entries filed under the wrong name: the
          filename digest is not the MD5 of the fingerprint inside *)
  orphaned_tmp : int;
      (** [.tmp.*] staging files older than the grace window — leftovers
          of a crashed writer *)
  stale_locks : int;  (** [.lock] files whose entry no longer exists *)
  pruned : int;  (** files removed (0 unless [prune]) *)
}

(** [fsck ~dir ()] — offline integrity walk of a store directory:
    re-verify every entry exactly as the read path would (magic,
    checksum, unmarshal, lint) {e plus} the name-vs-fingerprint check
    only an offline scan can do, and find crashed-writer leftovers.
    [prune] removes everything found wrong (entry removals take the
    per-digest advisory lock, so fsck is safe against a live fleet);
    [tmp_age_s] (default 60 s) is the grace window below which a [.tmp.*]
    file may still be a write in flight. *)
val fsck : ?prune:bool -> ?tmp_age_s:float -> dir:string -> unit -> fsck_report

(** In-memory digests, most recently used first (test hook). *)
val mem_digests : t -> string list

(** The on-disk store directory, when one was configured. *)
val dir : t -> string option

(** Drop every in-memory entry (disk entries survive), forcing the next
    lookups through the disk path and its corruption defenses.  A chaos /
    test hook; harmless under concurrent use — evicted lookups degrade
    to disk hits or misses. *)
val invalidate_memory : t -> unit
