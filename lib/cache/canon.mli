(** Canonical normal form for cache keying.

    Two requests whose expressions differ only by the order of commutative
    operands (or by trivially equivalent sign placement) must map to the
    same cache entry, so the canonicalizer rewrites an [Ast.t] into a
    normal form that is {e evaluation-equivalent} — over the wrap-around
    integer ring, hence modulo 2^W for every W — to the original:

    - [+]/[-]/[Neg] spines flatten into one signed term list, sorted by
      a deterministic structural order and rebuilt left-associatively
      (added terms first, subtracted terms after);
    - [*] spines flatten into one factor list, sorted the same way, with
      negations (and constant signs) hoisted out as a parity bit;
    - double negation and negated constants are eliminated, as are
      additive zero terms, multiplicative one factors, and products
      containing a zero factor;
    - [Pow] bases and exponents are preserved (only the base recurses).

    The function is idempotent, and both properties (equivalence and
    idempotence) are property-tested in [test_cache.ml] against random
    fuzzer-generated expressions. *)

val canonicalize : Dp_expr.Ast.t -> Dp_expr.Ast.t

(** The deterministic structural order used for operand sorting. *)
val compare_expr : Dp_expr.Ast.t -> Dp_expr.Ast.t -> int
