open Dp_expr

type request = {
  expr : Ast.t;
  env : Env.t;
  width : int option;
  strategy : Dp_flow.Strategy.t;
  adder : Dp_adders.Adder.kind;
  lower_config : Dp_bitmatrix.Lower.config;
  check_level : Dp_verify.Lint.check_level;
  tech : Dp_tech.Tech.t;
}

let request ?(width = None) ?(strategy = Dp_flow.Strategy.Fa_aot)
    ?(adder = Dp_adders.Adder.Cla)
    ?(lower_config = Dp_bitmatrix.Lower.default_config)
    ?(check_level = Dp_verify.Lint.Off) ?(tech = Dp_tech.Tech.lcb_like) env
    expr =
  { expr; env; width; strategy; adder; lower_config; check_level; tech }

type outcome = {
  result : Dp_flow.Synth.result;
  verilog : string;
  digest : string;
  width : int;
  cached : bool;
}

let run ?store (r : request) =
  match Env.check_covers_res r.expr r.env with
  | Error d -> Error d
  | Ok () -> (
    let key =
      Key.make ~tech:r.tech ~adder:r.adder ~lower_config:r.lower_config
        ~check_level:r.check_level ?width:r.width r.strategy r.env r.expr
    in
    let digest = Key.digest key in
    match Option.bind store (fun s -> Store.find s key) with
    | Some (e : Store.entry) ->
      Ok
        {
          result = e.result;
          verilog = e.verilog;
          digest;
          width = key.width;
          cached = true;
        }
    | None -> (
      (* Synthesize the *canonical* expression at the key's resolved
         width, so every request in the same canonical class receives
         the same netlist — the byte-identity the acceptance property
         tests demand. *)
      match
        Dp_flow.Synth.run_res ~tech:r.tech ~adder:r.adder
          ~lower_config:r.lower_config ~width:key.width
          ~check_level:r.check_level r.strategy r.env key.expr
      with
      | Error d -> Error d
      | Ok result ->
        (* The governed build is complete: detach the captured governor
           so the entry below (shared from the memory LRU and marshalled
           to disk) cannot resurrect a stale one into later requests. *)
        Dp_netlist.Netlist.detach_gov result.netlist;
        let verilog = Dp_netlist.Verilog.emit result.netlist in
        Option.iter
          (fun s ->
            Store.add s key
              { Store.fingerprint = Key.fingerprint key; result; verilog })
          store;
        Ok { result; verilog; digest; width = key.width; cached = false }))
