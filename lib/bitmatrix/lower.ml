open Dp_netlist
open Dp_expr

type recoding = Csd | Binary

type multiplier_style = And_array | Booth

type config = { recoding : recoding; multiplier_style : multiplier_style }

let default_config = { recoding = Csd; multiplier_style = And_array }

(* Declare the expression's variables as primary inputs, reusing buses that
   an earlier lowering into the same netlist already declared — this is
   what lets several outputs share one netlist (and, through the builder's
   structural hashing, their partial products). *)
let declare_inputs netlist env expr =
  let existing = Netlist.inputs netlist in
  List.map
    (fun v ->
      match List.assoc_opt v existing with
      | Some nets ->
        if Array.length nets <> Env.width v env then
          invalid_arg
            (Printf.sprintf "Lower.declare_inputs: %s redeclared at a different width" v);
        (v, nets)
      | None ->
        let info = Env.find v env in
        ( v,
          Netlist.add_input netlist v ~width:info.width ~arrival:info.arrival
            ~prob:info.prob ))
    (Ast.vars expr)

module Support_map = Map.Make (struct
  type t = Netlist.net list

  let compare = Stdlib.compare
end)

(* Lowering strategy (DESIGN.md Sec. 5): normalize to sum-of-products, then
   expand every monomial into bit-level partial products.  A tuple choosing
   bit i_k from each factor contributes coeff * 2^(Σ i_k) times the AND of
   the chosen bits.  Tuples are accumulated per *support* (the deduplicated
   literal set), so x_i*x_i collapses to x_i and the symmetric pair
   x_i*x_j + x_j*x_i becomes a single addend one column to the left — the
   classic squarer folding, obtained here for free and globally across
   monomials.  Each support's accumulated integer multiplier is then recoded
   (CSD by default) into few signed power-of-two digits; negative digits
   lower as complemented addends with a constant correction, and every
   constant is pre-summed into a single K whose bits enter the matrix. *)
let lower ?(config = default_config) netlist env expr ~width =
  if width < 1 || width > 62 then invalid_arg "Lower.lower: width out of [1,62]";
  Env.check_covers expr env;
  let inputs = declare_inputs netlist env expr in
  let bit v i = (List.assoc v inputs).(i) in
  let sop = Sop.of_expr expr in
  (* Checkpoint of the SOP expansion itself: the tuple enumeration below
     can visit exponentially many partial products before the first cell
     exists, so cell-level polling alone would come too late. *)
  let gov = Netlist.gov netlist in
  let checkpoint () =
    match gov with
    | Some g -> Dp_gov.Gov.check ~site:Dp_gov.Gov.Lower g
    | None -> ()
  in
  let table = ref Support_map.empty in
  let add_support supp m =
    checkpoint ();
    if m <> 0 then
      table :=
        Support_map.update supp
          (fun prev ->
            let v = Option.value prev ~default:0 + m in
            if v = 0 then None else Some v)
          !table
  in
  let expand_monomial mono coeff =
    (* [sign] tracks the product of per-bit signs: the MSB of a signed
       (two's-complement) factor carries weight -2^(w-1), which makes the
       Baugh-Wooley signed partial products fall out of the same
       signed-digit machinery as subtraction. *)
    let rec enum factors sign supp weight =
      if weight < width then
        match factors with
        | [] ->
          add_support (List.sort_uniq Int.compare supp)
            (sign * coeff * (1 lsl weight))
        | v :: rest ->
          let info = Env.find v env in
          for i = 0 to info.width - 1 do
            let bit_sign = if info.signed && i = info.width - 1 then -1 else 1 in
            enum rest (sign * bit_sign) (bit v i :: supp) (weight + i)
          done
    in
    enum mono 1 [] 0
  in
  let matrix = Matrix.create ~max_width:width () in
  let k = ref 0 in
  (* With the Booth style, products of two distinct unsigned variables with
     a +/-1 coefficient use radix-4 Booth rows; everything else goes
     through the AND-array support table. *)
  let booth_eligible mono coeff =
    config.multiplier_style = Booth
    && abs coeff = 1
    &&
    match mono with
    | [ u; v ] ->
      (not (String.equal u v))
      && (not (Env.find u env).signed)
      && not (Env.find v env).signed
    | [] | [ _ ] | _ :: _ :: _ -> false
  in
  List.iter
    (fun (mono, coeff) ->
      if booth_eligible mono coeff then
        match mono with
        | [ u; v ] ->
          (* recode over the wider operand: fewer digit rows *)
          let wu = Env.width u env and wv = Env.width v env in
          let multiplicand, multiplier = if wu >= wv then u, v else v, u in
          k :=
            !k
            + Booth.lower_product ~negate:(coeff < 0) netlist matrix
                ~multiplicand:(List.assoc multiplicand inputs)
                ~multiplier:(List.assoc multiplier inputs)
        | [] | [ _ ] | _ :: _ :: _ -> assert false
      else expand_monomial mono coeff)
    (Sop.terms sop);
  Support_map.iter
    (fun supp m ->
      match supp with
      | [] -> k := !k + m
      | _ ->
        let digits =
          match config.recoding with
          | Csd -> Csd.recode m
          | Binary -> Csd.binary m
        in
        List.iter
          (fun (d : Csd.digit) ->
            checkpoint ();
            if d.weight < width then
              let net = Netlist.and_n netlist supp in
              if d.sign > 0 then Matrix.add matrix ~weight:d.weight net
              else begin
                (* -b*2^w  =  ~b*2^w - 2^w *)
                Matrix.add matrix ~weight:d.weight (Netlist.not_ netlist net);
                k := !k - (1 lsl d.weight)
              end)
          digits)
    !table;
  let k_bits = !k land Eval.mask width in
  for j = 0 to width - 1 do
    if (k_bits lsr j) land 1 = 1 then
      Matrix.add matrix ~weight:j (Netlist.const netlist true)
  done;
  matrix
