(* A minimal text format for technology files:

     # comment
     name my_library
     fa_sum_delay 0.45
     fa_carry_delay 0.32
     ...

   Unknown keys are rejected; omitted keys inherit from the base technology
   (lcb_like unless another base is given).  Numbers use OCaml float
   syntax. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let apply (t : Tech.t) key value =
  let f () =
    match float_of_string_opt value with
    | Some v -> v
    | None -> fail "%s: not a number: %s" key value
  in
  match key with
  | "name" -> { t with name = value }
  | "fa_sum_delay" -> { t with fa_sum_delay = f () }
  | "fa_carry_delay" -> { t with fa_carry_delay = f () }
  | "ha_sum_delay" -> { t with ha_sum_delay = f () }
  | "ha_carry_delay" -> { t with ha_carry_delay = f () }
  | "and2_delay" -> { t with and2_delay = f () }
  | "or2_delay" -> { t with or2_delay = f () }
  | "xor2_delay" -> { t with xor2_delay = f () }
  | "not_delay" -> { t with not_delay = f () }
  | "buf_delay" -> { t with buf_delay = f () }
  | "fa_area" -> { t with fa_area = f () }
  | "ha_area" -> { t with ha_area = f () }
  | "and2_area" -> { t with and2_area = f () }
  | "or2_area" -> { t with or2_area = f () }
  | "xor2_area" -> { t with xor2_area = f () }
  | "not_area" -> { t with not_area = f () }
  | "buf_area" -> { t with buf_area = f () }
  | "fa_sum_energy" -> { t with fa_sum_energy = f () }
  | "fa_carry_energy" -> { t with fa_carry_energy = f () }
  | "ha_sum_energy" -> { t with ha_sum_energy = f () }
  | "ha_carry_energy" -> { t with ha_carry_energy = f () }
  | "gate_energy" -> { t with gate_energy = f () }
  | "counter_fusion" -> { t with counter_fusion = f () }
  | _ -> fail "unknown key: %s" key

let validate (t : Tech.t) =
  let nonneg name v = if v < 0.0 then fail "%s must be >= 0 (got %g)" name v in
  nonneg "fa_sum_delay" t.fa_sum_delay;
  nonneg "fa_carry_delay" t.fa_carry_delay;
  nonneg "ha_sum_delay" t.ha_sum_delay;
  nonneg "ha_carry_delay" t.ha_carry_delay;
  nonneg "fa_area" t.fa_area;
  nonneg "ha_area" t.ha_area;
  nonneg "fa_sum_energy" t.fa_sum_energy;
  nonneg "fa_carry_energy" t.fa_carry_energy;
  if not (t.counter_fusion > 0.0 && t.counter_fusion <= 1.0) then
    fail "counter_fusion must be in (0, 1] (got %g)" t.counter_fusion;
  t

let of_string ?(base = Tech.lcb_like) s =
  let lines = String.split_on_char '\n' s in
  let parse_line t (lineno, line) =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let line = String.trim line in
    if line = "" then t
    else
      match String.index_opt line ' ' with
      | None -> fail "line %d: expected 'key value'" lineno
      | Some i ->
        let key = String.sub line 0 i in
        let value = String.trim (String.sub line i (String.length line - i)) in
        apply t key value
  in
  validate
    (List.fold_left parse_line base
       (List.mapi (fun i l -> (i + 1, l)) lines))

let of_file ?base path =
  let contents = In_channel.with_open_text path In_channel.input_all in
  of_string ?base contents

let of_string_res ?base s =
  match of_string ?base s with
  | t -> Ok t
  | exception Parse_error msg ->
    Dp_diag.Diag.error (Dp_diag.Diag.v ~code:"DP-TECH001" ~subsystem:"tech" msg)

let of_file_res ?base path =
  match of_file ?base path with
  | t -> Ok t
  | exception Parse_error msg ->
    Dp_diag.Diag.error
      (Dp_diag.Diag.v ~code:"DP-TECH001" ~subsystem:"tech"
         ~context:[ ("file", path) ]
         msg)
  | exception Sys_error msg ->
    Dp_diag.Diag.error
      (Dp_diag.Diag.v ~code:"DP-TECH002" ~subsystem:"tech"
         ~context:[ ("file", path) ]
         msg)

let to_string (t : Tech.t) =
  String.concat "\n"
    [
      Printf.sprintf "name %s" t.name;
      Printf.sprintf "fa_sum_delay %.17g" t.fa_sum_delay;
      Printf.sprintf "fa_carry_delay %.17g" t.fa_carry_delay;
      Printf.sprintf "ha_sum_delay %.17g" t.ha_sum_delay;
      Printf.sprintf "ha_carry_delay %.17g" t.ha_carry_delay;
      Printf.sprintf "and2_delay %.17g" t.and2_delay;
      Printf.sprintf "or2_delay %.17g" t.or2_delay;
      Printf.sprintf "xor2_delay %.17g" t.xor2_delay;
      Printf.sprintf "not_delay %.17g" t.not_delay;
      Printf.sprintf "buf_delay %.17g" t.buf_delay;
      Printf.sprintf "fa_area %.17g" t.fa_area;
      Printf.sprintf "ha_area %.17g" t.ha_area;
      Printf.sprintf "and2_area %.17g" t.and2_area;
      Printf.sprintf "or2_area %.17g" t.or2_area;
      Printf.sprintf "xor2_area %.17g" t.xor2_area;
      Printf.sprintf "not_area %.17g" t.not_area;
      Printf.sprintf "buf_area %.17g" t.buf_area;
      Printf.sprintf "fa_sum_energy %.17g" t.fa_sum_energy;
      Printf.sprintf "fa_carry_energy %.17g" t.fa_carry_energy;
      Printf.sprintf "ha_sum_energy %.17g" t.ha_sum_energy;
      Printf.sprintf "ha_carry_energy %.17g" t.ha_carry_energy;
      Printf.sprintf "gate_energy %.17g" t.gate_energy;
      Printf.sprintf "counter_fusion %.17g" t.counter_fusion;
    ]
  ^ "\n"
