(** Technology model: per-cell delay, area and switching-energy constants.

    The paper characterized its cells (notably the full adder's sum delay
    [Ds], carry delay [Dc] and switching energies [Ws], [Wc]) from the LSI
    lcbg10pv 0.35um library with Synopsys tools.  We substitute a parameter
    record; [lcb_like] carries defaults at the same order of magnitude and
    [unit_delay] is the Ds = 2, Dc = 1 teaching technology of the paper's
    Fig. 2. *)

type t = {
  name : string;
  fa_sum_delay : float;  (** Ds: FA input-to-sum delay (ns). *)
  fa_carry_delay : float;  (** Dc: FA input-to-carry delay (ns). *)
  ha_sum_delay : float;
  ha_carry_delay : float;
  and2_delay : float;
  or2_delay : float;
  xor2_delay : float;
  not_delay : float;
  buf_delay : float;
  fa_area : float;
  ha_area : float;
  and2_area : float;
  or2_area : float;
  xor2_area : float;
  not_area : float;
  buf_area : float;
  fa_sum_energy : float;  (** Ws: energy of one FA sum-output transition. *)
  fa_carry_energy : float;  (** Wc: energy of one FA carry-output transition. *)
  ha_sum_energy : float;
  ha_carry_energy : float;
  gate_energy : float;  (** Energy of one transition of any plain gate. *)
  counter_fusion : float;
      (** Speed ratio (0 < f <= 1) of a monolithic parallel-counter cell
          against its FA/HA-composed reference body: every counter
          pin-to-port delay is the certified body's path delay times this
          factor.  Models the fused cell's shorter internal paths (a
          dedicated 4:2/7:3 layout avoids the full rail-to-rail swing of
          two cascaded FAs); 1.0 means counters are priced exactly as
          their discrete bodies. *)
}

val lcb_like : t
val unit_delay : t

(** [delay t kind ~port] is the pin-to-pin delay of output [port] of a cell
    of [kind].  Wide n-ary gates are priced as balanced trees of 2-input
    gates.  For the parallel counters this is the worst case over input
    pins; use {!pin_delay} for the pin-resolved model.
    @raise Invalid_argument on a nonexistent port. *)
val delay : t -> Cell_kind.t -> port:int -> float

(** [pin_delay t kind ~pin ~port] is the delay from input [pin] to output
    [port], or [None] when the pin has no combinational path to that port
    (the 4:2 compressor's carry-out is independent of its pins 3 and 4).
    Conventional cells report [Some (delay t kind ~port)] for every pin.
    Counter delays are path sums of FA/HA block delays through the
    canonical exactly-synthesized bodies of [Dp_counters], scaled by
    [counter_fusion]; [Dp_counters.Certify] holds these closed forms to
    the recipe-derived model for every technology it admits.
    @raise Invalid_argument on a nonexistent port. *)
val pin_delay : t -> Cell_kind.t -> pin:int -> port:int -> float option

val area : t -> Cell_kind.t -> float

(** Energy dissipated by one value transition of the given output port.
    @raise Invalid_argument on a nonexistent port. *)
val energy : t -> Cell_kind.t -> port:int -> float

val pp : t Fmt.t
