type t = {
  name : string;
  fa_sum_delay : float;
  fa_carry_delay : float;
  ha_sum_delay : float;
  ha_carry_delay : float;
  and2_delay : float;
  or2_delay : float;
  xor2_delay : float;
  not_delay : float;
  buf_delay : float;
  fa_area : float;
  ha_area : float;
  and2_area : float;
  or2_area : float;
  xor2_area : float;
  not_area : float;
  buf_area : float;
  fa_sum_energy : float;
  fa_carry_energy : float;
  ha_sum_energy : float;
  ha_carry_energy : float;
  gate_energy : float;
  counter_fusion : float;
}

(* Delay/area magnitudes chosen at 0.35um standard-cell scale; only relative
   values matter for reproducing the paper's comparisons. *)
let lcb_like = {
  name = "lcb_like_0.35um";
  fa_sum_delay = 0.45;
  fa_carry_delay = 0.32;
  ha_sum_delay = 0.28;
  ha_carry_delay = 0.18;
  and2_delay = 0.15;
  or2_delay = 0.15;
  xor2_delay = 0.25;
  not_delay = 0.08;
  buf_delay = 0.10;
  fa_area = 8.0;
  ha_area = 4.0;
  and2_area = 2.0;
  or2_area = 2.0;
  xor2_area = 3.0;
  not_area = 1.0;
  buf_area = 1.0;
  fa_sum_energy = 1.0;
  fa_carry_energy = 1.1;
  ha_sum_energy = 0.55;
  ha_carry_energy = 0.45;
  gate_energy = 0.25;
  (* Monolithic counter/compressor cells (mux- and transmission-gate
     based) run their internal paths roughly a quarter faster than two
     cascaded discrete FAs — the classic reason libraries ship dedicated
     4:2 cells. *)
  counter_fusion = 0.75;
}

(* The teaching technology of the paper's Fig. 2: Ds = 2, Dc = 1, everything
   else free.  Lets the examples reproduce the figure's arrival arithmetic. *)
let unit_delay = {
  name = "unit_delay";
  fa_sum_delay = 2.0;
  fa_carry_delay = 1.0;
  ha_sum_delay = 2.0;
  ha_carry_delay = 1.0;
  and2_delay = 0.0;
  or2_delay = 0.0;
  xor2_delay = 0.0;
  not_delay = 0.0;
  buf_delay = 0.0;
  fa_area = 1.0;
  ha_area = 0.5;
  and2_area = 0.0;
  or2_area = 0.0;
  xor2_area = 0.0;
  not_area = 0.0;
  buf_area = 0.0;
  fa_sum_energy = 1.0;
  fa_carry_energy = 1.0;
  ha_sum_energy = 1.0;
  ha_carry_energy = 1.0;
  gate_energy = 0.0;
  (* The teaching technology prices counters exactly as their discrete
     bodies, keeping the Fig. 2 arrival arithmetic literal. *)
  counter_fusion = 1.0;
}

let tree_levels n =
  (* depth of a balanced binary tree with [n] leaves *)
  let rec go acc cap = if cap >= n then acc else go (acc + 1) (cap * 2) in
  go 0 1

(* Per-pin, per-port delays of the parallel counters, as path sums of
   FA/HA block delays through the canonical exactly-synthesized bodies
   (see [Dp_counters]; the test suite certifies these closed forms
   against the recipe-derived model for every technology):

     C53: FA(p0,p1,p2) -> (s,c1); FA(s,p3,p4) -> (s0,c2); HA(c1,c2) -> (s1,s2)
     C63: FA(p0,p1,p2) -> (s,c1); FA(p3,p4,p5) -> (t,c2);
          HA(s,t) -> (s0,c3); FA(c1,c2,c3) -> (s1,s2)
     C73: FA(p0,p1,p2) -> (s,c1); FA(p3,p4,p5) -> (t,c2);
          FA(s,t,p6) -> (s0,c3); FA(c1,c2,c3) -> (s1,s2)
     C42: FA(p0,p1,p2) -> (u,cout); FA(u,p3,cin) -> (sum,carry)

   [None] means the pin has no combinational path to the port — the one
   such case is the 4:2 compressor's carry-out, which is independent of
   the late pins 3 (x4) and 4 (cin); that independence is what makes
   4:2 rows chain without a ripple.

   Every path sum is scaled by [counter_fusion]: the monolithic cell runs
   the body's paths faster than the discrete composition by that fixed
   technology-wide ratio. *)
let counter_pin_delay t (kind : Cell_kind.t) ~pin ~port =
  let ds = t.fa_sum_delay and dc = t.fa_carry_delay in
  let hs = t.ha_sum_delay and hc = t.ha_carry_delay in
  let fused path = Some (t.counter_fusion *. path) in
  match kind, port with
  | Cell_kind.C53, 0 -> fused (if pin < 3 then ds +. ds else ds)
  | Cell_kind.C53, 1 -> fused ((if pin < 3 then ds +. dc else dc) +. hs)
  | Cell_kind.C53, 2 -> fused ((if pin < 3 then ds +. dc else dc) +. hc)
  | Cell_kind.C63, 0 -> fused (ds +. hs)
  | Cell_kind.C63, 1 -> fused (Float.max dc (ds +. hc) +. ds)
  | Cell_kind.C63, 2 -> fused (Float.max dc (ds +. hc) +. dc)
  | Cell_kind.C73, 0 -> fused (if pin < 6 then ds +. ds else ds)
  | Cell_kind.C73, 1 -> fused (Float.max dc (if pin < 6 then ds +. dc else dc) +. ds)
  | Cell_kind.C73, 2 -> fused (Float.max dc (if pin < 6 then ds +. dc else dc) +. dc)
  | Cell_kind.C42, 0 -> fused (if pin < 3 then ds +. ds else ds)
  | Cell_kind.C42, 1 -> fused (if pin < 3 then ds +. dc else dc)
  | Cell_kind.C42, 2 -> if pin < 3 then fused dc else None
  | (Cell_kind.C42 | Cell_kind.C53 | Cell_kind.C63 | Cell_kind.C73), _ ->
    invalid_arg "Tech.pin_delay: bad output port"
  | ( Cell_kind.Fa | Cell_kind.Ha | Cell_kind.And_n _ | Cell_kind.Or_n _
    | Cell_kind.Xor_n _ | Cell_kind.Not | Cell_kind.Buf ), _ ->
    invalid_arg "Tech.counter_pin_delay: not a counter"

let counter_worst_delay t kind ~port =
  let worst = ref neg_infinity in
  for pin = 0 to Cell_kind.arity kind - 1 do
    match counter_pin_delay t kind ~pin ~port with
    | Some d -> worst := Float.max !worst d
    | None -> ()
  done;
  !worst

let delay t kind ~port =
  match (kind : Cell_kind.t), port with
  | Fa, 0 -> t.fa_sum_delay
  | Fa, 1 -> t.fa_carry_delay
  | Ha, 0 -> t.ha_sum_delay
  | Ha, 1 -> t.ha_carry_delay
  | (C42 | C53 | C63 | C73), (0 | 1 | 2) -> counter_worst_delay t kind ~port
  | And_n n, 0 -> t.and2_delay *. float_of_int (tree_levels n)
  | Or_n n, 0 -> t.or2_delay *. float_of_int (tree_levels n)
  | Xor_n n, 0 -> t.xor2_delay *. float_of_int (tree_levels n)
  | Not, 0 -> t.not_delay
  | Buf, 0 -> t.buf_delay
  | (Fa | Ha | C42 | C53 | C63 | C73 | And_n _ | Or_n _ | Xor_n _ | Not | Buf), _
    ->
    invalid_arg "Tech.delay: bad output port"

let pin_delay t kind ~pin ~port =
  match (kind : Cell_kind.t) with
  | C42 | C53 | C63 | C73 -> counter_pin_delay t kind ~pin ~port
  | Fa | Ha | And_n _ | Or_n _ | Xor_n _ | Not | Buf ->
    (* every pin of a conventional cell reaches every port with the same
       pin-to-pin delay *)
    ignore pin;
    Some (delay t kind ~port)

(* Counter areas are the block sums of their canonical bodies. *)
let area t (kind : Cell_kind.t) =
  match kind with
  | Fa -> t.fa_area
  | Ha -> t.ha_area
  | C42 -> 2.0 *. t.fa_area
  | C53 -> (2.0 *. t.fa_area) +. t.ha_area
  | C63 -> (3.0 *. t.fa_area) +. t.ha_area
  | C73 -> 4.0 *. t.fa_area
  | And_n n -> t.and2_area *. float_of_int (n - 1)
  | Or_n n -> t.or2_area *. float_of_int (n - 1)
  | Xor_n n -> t.xor2_area *. float_of_int (n - 1)
  | Not -> t.not_area
  | Buf -> t.buf_area

(* Counter output energies distribute the body's block-output energies over
   the monolithic ports (each internal net is attributed to the port fed by
   its block chain), so the sum over a counter's ports equals the sum over
   its expanded body's outputs — a conservation the test suite checks. *)
let energy t kind ~port =
  match (kind : Cell_kind.t), port with
  | Fa, 0 -> t.fa_sum_energy
  | Fa, 1 -> t.fa_carry_energy
  | Ha, 0 -> t.ha_sum_energy
  | Ha, 1 -> t.ha_carry_energy
  | C42, 0 -> 2.0 *. t.fa_sum_energy
  | C42, (1 | 2) -> t.fa_carry_energy
  | C53, 0 -> 2.0 *. t.fa_sum_energy
  | C53, 1 -> t.ha_sum_energy +. t.fa_carry_energy
  | C53, 2 -> t.ha_carry_energy +. t.fa_carry_energy
  | C63, 0 -> (2.0 *. t.fa_sum_energy) +. t.ha_sum_energy
  | C63, 1 -> t.fa_sum_energy +. t.fa_carry_energy
  | C63, 2 -> (2.0 *. t.fa_carry_energy) +. t.ha_carry_energy
  | C73, 0 -> 3.0 *. t.fa_sum_energy
  | C73, 1 -> t.fa_sum_energy +. t.fa_carry_energy
  | C73, 2 -> 3.0 *. t.fa_carry_energy
  | (And_n _ | Or_n _ | Xor_n _ | Not | Buf), 0 -> t.gate_energy
  | (Fa | Ha | C42 | C53 | C63 | C73 | And_n _ | Or_n _ | Xor_n _ | Not | Buf), _
    ->
    invalid_arg "Tech.energy: bad output port"

let pp ppf t = Fmt.pf ppf "tech:%s" t.name
