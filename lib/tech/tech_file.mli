(** Loading technology parameters from a simple text format:

    {v
    # comment
    name my_library
    fa_sum_delay 0.45
    fa_carry_delay 0.32
    v}

    Omitted keys inherit from [base] (default {!Tech.lcb_like}). *)

exception Parse_error of string

(** @raise Parse_error on unknown keys, malformed lines, bad numbers or
    negative values. *)
val of_string : ?base:Tech.t -> string -> Tech.t

(** @raise Parse_error as {!of_string}; @raise Sys_error on I/O failure. *)
val of_file : ?base:Tech.t -> string -> Tech.t

(** Like {!of_string}, with format errors as typed [DP-TECH001]
    diagnostics. *)
val of_string_res : ?base:Tech.t -> string -> (Tech.t, Dp_diag.Diag.t) result

(** Like {!of_file}; I/O failures become [DP-TECH002] diagnostics. *)
val of_file_res : ?base:Tech.t -> string -> (Tech.t, Dp_diag.Diag.t) result

(** Round-trippable rendering of a technology. *)
val to_string : Tech.t -> string
