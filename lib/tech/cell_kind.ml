type t =
  | Fa
  | Ha
  | C42
  | C53
  | C63
  | C73
  | And_n of int
  | Or_n of int
  | Xor_n of int
  | Not
  | Buf

let equal a b =
  match a, b with
  | Fa, Fa | Ha, Ha | C42, C42 | C53, C53 | C63, C63 | C73, C73
  | Not, Not | Buf, Buf ->
    true
  | And_n n, And_n m | Or_n n, Or_n m | Xor_n n, Xor_n m -> n = m
  | (Fa | Ha | C42 | C53 | C63 | C73 | And_n _ | Or_n _ | Xor_n _ | Not | Buf), _
    ->
    false

let arity = function
  | Fa -> 3
  | Ha -> 2
  | C42 -> 5 (* x1..x4 on pins 0-3, cin on pin 4 *)
  | C53 -> 5
  | C63 -> 6
  | C73 -> 7
  | And_n n | Or_n n | Xor_n n -> n
  | Not | Buf -> 1

let output_count = function
  | Fa | Ha -> 2
  | C42 | C53 | C63 | C73 -> 3
  | And_n _ | Or_n _ | Xor_n _ | Not | Buf -> 1

let is_counter = function
  | C42 | C53 | C63 | C73 -> true
  | Fa | Ha | And_n _ | Or_n _ | Xor_n _ | Not | Buf -> false

let name = function
  | Fa -> "FA"
  | Ha -> "HA"
  | C42 -> "C42"
  | C53 -> "C53"
  | C63 -> "C63"
  | C73 -> "C73"
  | And_n n -> Printf.sprintf "AND%d" n
  | Or_n n -> Printf.sprintf "OR%d" n
  | Xor_n n -> Printf.sprintf "XOR%d" n
  | Not -> "NOT"
  | Buf -> "BUF"

let pp ppf k = Fmt.string ppf (name k)
