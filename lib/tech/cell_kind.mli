(** Kinds of cells available in the target technology.

    An [Fa] (full adder) sums three bits of the same weight into a sum bit
    (port 0) and a carry-out bit of the next weight (port 1).  An [Ha] (half
    adder) does the same for two bits.

    The generalized parallel counters [C53], [C63] and [C73] sum 5/6/7 bits
    of weight [j] into three output bits: port 0 at weight [j], port 1 at
    weight [j+1] and port 2 at weight [j+2] — the binary digits of the input
    population count.  [C42] is the 4:2 compressor: pins 0-3 carry the four
    addends and pin 4 the chain carry-in; port 0 is the sum (weight [j]),
    port 1 the carry and port 2 the chain carry-out (both weight [j+1]).
    The carry-out depends only on pins 0-2, never on the carry-in, which is
    what lets 4:2 rows chain without a ripple.  Every counter's gate-level
    body is exactly synthesized and certified in [Dp_counters].

    [And_n n], [Or_n n] and [Xor_n n] are [n]-input single-output gates
    ([n >= 2]); wide instances are priced as balanced trees of 2-input
    gates. *)

type t =
  | Fa
  | Ha
  | C42
  | C53
  | C63
  | C73
  | And_n of int
  | Or_n of int
  | Xor_n of int
  | Not
  | Buf

val equal : t -> t -> bool

(** Number of input pins. *)
val arity : t -> int

(** Number of output ports: 2 for [Fa]/[Ha] (sum, carry), 3 for the
    parallel counters, 1 otherwise. *)
val output_count : t -> int

(** True for the multi-output parallel-counter kinds [C42]/[C53]/[C63]/
    [C73]. *)
val is_counter : t -> bool

val name : t -> string
val pp : t Fmt.t
