open Dp_netlist

type mutation =
  | Rewire_input
  | Cross_outputs
  | Drop_gate
  | Flip_const
  | Forward_input
  | Duplicate_driver
  | Dangling_input
  | Counter_retype
  | Counter_chain

let all =
  [
    Rewire_input;
    Cross_outputs;
    Drop_gate;
    Flip_const;
    Forward_input;
    Duplicate_driver;
    Dangling_input;
    Counter_retype;
    Counter_chain;
  ]

let name = function
  | Rewire_input -> "rewire-input"
  | Cross_outputs -> "cross-outputs"
  | Drop_gate -> "drop-gate"
  | Flip_const -> "flip-const"
  | Forward_input -> "forward-input"
  | Duplicate_driver -> "duplicate-driver"
  | Dangling_input -> "dangling-input"
  | Counter_retype -> "counter-retype"
  | Counter_chain -> "counter-chain"

let expected_rule = function
  | Rewire_input -> None
  | Cross_outputs -> Some Lint.Driver_mismatch
  | Drop_gate -> Some Lint.Arity_violation
  | Flip_const -> Some Lint.Const_prob
  | Forward_input -> Some Lint.Topo_violation
  | Duplicate_driver -> Some Lint.Multiply_driven
  | Dangling_input -> Some Lint.Dangling_ref
  | Counter_retype -> None
  | Counter_chain -> None

let pick rng = function
  | [] -> None
  | l -> Some (List.nth l (Random.State.int rng (List.length l)))

(* Cells with at least one input pin, the usual mutation sites. *)
let wired_cells nl =
  let acc = ref [] in
  Netlist.iter_cells
    (fun id (c : Netlist.cell) ->
      if Array.length c.inputs > 0 then acc := id :: !acc)
    nl;
  List.rev !acc

(* Nets driven by a cell port, keyed for swapping. *)
let cell_driven_nets nl =
  let acc = ref [] in
  for n = Netlist.net_count nl - 1 downto 0 do
    match Netlist.driver nl n with
    | Netlist.From_cell _ -> acc := n :: !acc
    | Netlist.From_input _ | Netlist.From_const _ -> ()
  done;
  !acc

let min_output nl cell =
  Array.fold_left min max_int (Netlist.cell_output_nets nl cell)

let apply ?(seed = 0) nl mutation =
  let rng = Random.State.make [| seed; Hashtbl.hash (name mutation) |] in
  match mutation with
  | Rewire_input ->
    (* Keep the net ordering legal — only the function changes. *)
    let sites =
      List.filter_map
        (fun c ->
          let inputs = (Netlist.cell nl c).inputs in
          let bound = min (min_output nl c) (Netlist.net_count nl) in
          let pins =
            List.filter
              (fun pin ->
                (* at least one candidate net differs from the current one *)
                bound > 1 || (bound = 1 && inputs.(pin) <> 0))
              (List.init (Array.length inputs) Fun.id)
          in
          match pins with [] -> None | _ -> Some (c, pins, bound))
        (wired_cells nl)
    in
    Option.map
      (fun (c, pins, bound) ->
        let pin = Option.get (pick rng pins) in
        let current = (Netlist.cell nl c).inputs.(pin) in
        let rec fresh () =
          let n = Random.State.int rng bound in
          if n = current then fresh () else n
        in
        let replacement = fresh () in
        Netlist.Mutate.set_cell_input nl ~cell:c ~pin replacement;
        Printf.sprintf "rewired cell %d pin %d from net %d to net %d" c pin
          current replacement)
      (pick rng sites)
  | Cross_outputs -> (
    match cell_driven_nets nl with
    | [] | [ _ ] -> None
    | nets ->
      let a = Option.get (pick rng nets) in
      let b = Option.get (pick rng (List.filter (fun n -> n <> a) nets)) in
      let da = Netlist.driver nl a and db = Netlist.driver nl b in
      Netlist.Mutate.set_driver nl a db;
      Netlist.Mutate.set_driver nl b da;
      Some (Printf.sprintf "swapped the drivers of nets %d and %d" a b))
  | Drop_gate ->
    Option.map
      (fun c ->
        let cell = Netlist.cell nl c in
        Netlist.Mutate.set_cell nl c { cell with inputs = [||] };
        Printf.sprintf "dropped the %d inputs of cell %d (%s)"
          (Array.length cell.inputs) c
          (Dp_tech.Cell_kind.name cell.kind))
      (pick rng (wired_cells nl))
  | Flip_const ->
    let consts = ref [] in
    for n = Netlist.net_count nl - 1 downto 0 do
      match Netlist.driver nl n with
      | Netlist.From_const b -> consts := (n, b) :: !consts
      | Netlist.From_input _ | Netlist.From_cell _ -> ()
    done;
    Option.map
      (fun (n, b) ->
        Netlist.Mutate.set_driver nl n (Netlist.From_const (not b));
        Printf.sprintf "flipped constant net %d from %b to %b" n b (not b))
      (pick rng !consts)
  | Forward_input ->
    let sites =
      List.filter (fun c -> min_output nl c < Netlist.net_count nl)
        (wired_cells nl)
    in
    Option.map
      (fun c ->
        let inputs = (Netlist.cell nl c).inputs in
        let pin = Random.State.int rng (Array.length inputs) in
        let lo = min_output nl c in
        let target = lo + Random.State.int rng (Netlist.net_count nl - lo) in
        Netlist.Mutate.set_cell_input nl ~cell:c ~pin target;
        Printf.sprintf "rewired cell %d pin %d forward to net %d" c pin target)
      (pick rng sites)
  | Duplicate_driver -> (
    match cell_driven_nets nl with
    | [] | [ _ ] -> None
    | nets ->
      let a = Option.get (pick rng nets) in
      let b = Option.get (pick rng (List.filter (fun n -> n <> a) nets)) in
      Netlist.Mutate.set_driver nl b (Netlist.driver nl a);
      Some (Printf.sprintf "net %d now claims net %d's driver" b a))
  | Dangling_input ->
    Option.map
      (fun c ->
        let inputs = (Netlist.cell nl c).inputs in
        let pin = Random.State.int rng (Array.length inputs) in
        let target = Netlist.net_count nl + 1 + Random.State.int rng 64 in
        Netlist.Mutate.set_cell_input nl ~cell:c ~pin target;
        Printf.sprintf "cell %d pin %d now references nonexistent net %d" c pin
          target)
      (pick rng (wired_cells nl))
  | Counter_retype ->
    (* 4:2 compressors and 5:3 counters share arity and output count, so
       swapping the kind keeps every structural invariant — only the
       per-port functions (and the output weights they assume) change. *)
    let sites =
      List.filter
        (fun c ->
          match (Netlist.cell nl c).kind with
          | Dp_tech.Cell_kind.C42 | Dp_tech.Cell_kind.C53 -> true
          | _ -> false)
        (wired_cells nl)
    in
    Option.map
      (fun c ->
        let cell = Netlist.cell nl c in
        let kind' =
          match cell.kind with
          | Dp_tech.Cell_kind.C42 -> Dp_tech.Cell_kind.C53
          | _ -> Dp_tech.Cell_kind.C42
        in
        Netlist.Mutate.set_cell nl c { cell with kind = kind' };
        Printf.sprintf "retyped counter cell %d from %s to %s" c
          (Dp_tech.Cell_kind.name cell.kind)
          (Dp_tech.Cell_kind.name kind'))
      (pick rng sites)
  | Counter_chain ->
    (* Rewire a compressor's cin (pin 4, the carry-chain pin) onto one of
       its own data pins: the chain net is lost but the wiring stays
       legal, so only equivalence checking can see the corruption. *)
    let sites =
      List.filter_map
        (fun c ->
          let cell = Netlist.cell nl c in
          if cell.kind <> Dp_tech.Cell_kind.C42 then None
          else
            let cin = cell.inputs.(4) in
            match
              List.filter (fun p -> cell.inputs.(p) <> cin) [ 0; 1; 2; 3 ]
            with
            | [] -> None
            | pins -> Some (c, cin, pins))
        (wired_cells nl)
    in
    Option.map
      (fun (c, cin, pins) ->
        let pin = Option.get (pick rng pins) in
        let src = (Netlist.cell nl c).inputs.(pin) in
        Netlist.Mutate.set_cell_input nl ~cell:c ~pin:4 src;
        Printf.sprintf
          "corrupted counter cell %d carry chain: cin net %d replaced by its \
           own data net %d"
          c cin src)
      (pick rng sites)
