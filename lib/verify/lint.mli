(** Structural integrity checking over built netlists.

    The builder in [Dp_netlist.Netlist] maintains several invariants by
    construction (every net has a driver, cells consume only
    already-existing nets, annotations match drivers).  Nothing re-checks
    them afterwards, yet the whole flow — the simulator's single forward
    pass, [Topo.levels], the switching model — silently relies on them.
    [run] makes the invariants machine-checkable: it sweeps a netlist once
    and returns a typed list of findings instead of raising, so callers
    can gate synthesis ({!Dp_flow.Synth.run}'s [?check_level]), print a
    report (the [dpsyn lint] subcommand), or assert cleanliness in tests.

    The checker is the detection half of a defense-in-depth pair: its
    teeth are proven by [Inject], which corrupts known-good netlists and
    asserts every corruption is caught here or by [Dp_sim.Equiv]. *)

open Dp_netlist

(** What a finding is about. *)
type rule =
  | Dangling_ref
      (** a cell pin, cell output slot or declared port names a net id
          outside [0, net_count) *)
  | Bad_driver
      (** a net's [From_cell] driver names a missing cell or port *)
  | Driver_mismatch
      (** net [n] claims cell [c] port [p] as driver but the cell's output
          table maps that port to a different net — crossed wires *)
  | Multiply_driven  (** one cell output port drives two or more nets *)
  | Topo_violation
      (** a cell consumes a net no older than its own outputs; breaks the
          forward-pass evaluation order of the simulator and [Topo] *)
  | Combinational_cycle  (** a dependency cycle through cells *)
  | Arity_violation
      (** input or output count disagrees with the cell kind's signature;
          includes n-ary gates with fewer than 2 inputs *)
  | Prob_range  (** an annotated 1-probability outside [0, 1] or NaN *)
  | Const_prob
      (** a constant net annotated with a probability other than its
          value — the signature of a flipped constant *)
  | Arrival_range  (** a NaN or infinite arrival-time annotation *)
  | Unreachable_cell
      (** no output of the cell reaches any declared output — [Info]
          severity: clean construction leaves dead gates behind wherever
          a dropped MSB carry-out had its own gate *)
  | No_outputs  (** the netlist declares no outputs at all *)
  | Empty_port  (** a declared input or output bus of width 0 *)

type loc = Net of Netlist.net | Cell of int | Port of string | Netlist

type finding = {
  rule : rule;
  severity : Dp_diag.Diag.severity;
  loc : loc;
  message : string;
}

val rule_name : rule -> string
val pp_finding : finding Fmt.t

(** Full sweep; findings in rule-check order.  Never raises, even on
    netlists corrupted enough to defeat the accessors (out-of-range ids
    are reported, not chased). *)
val run : Netlist.t -> finding list

(** Findings at {!Dp_diag.Diag.Error} severity only. *)
val errors : finding list -> finding list

(** Findings at [Warning] severity or above — what [Strict] gates on. *)
val significant : finding list -> finding list

val to_diag : finding -> Dp_diag.Diag.t

(** How much integrity checking a synthesis entry point performs:
    [Off] none (the default), [Warn] lints and reports findings through
    [on_finding] but proceeds, [Strict] fails with a diagnostic if any
    finding at [Warning]+ severity exists. *)
type check_level = Off | Warn | Strict

val check_level_name : check_level -> string
val check_level_of_name : string -> check_level option

(** [gate ~level ?on_finding nl] applies the policy above; the [Error]
    carries the first finding's rule plus a finding count in context. *)
val gate :
  level:check_level -> ?on_finding:(finding -> unit) -> Netlist.t ->
  (unit, Dp_diag.Diag.t) result
