(** Seeded fault injection: deliberately corrupt a known-good netlist and
    let the test suite assert that {!Lint} and/or [Dp_sim.Equiv] notices.
    A checker nobody has ever seen fail is indistinguishable from [fun _
    -> []]; this module provokes the failures.

    Mutations are destructive (they edit the netlist in place through
    [Netlist.Mutate]), so apply each one to a freshly synthesized
    netlist.  With a fixed [seed] the chosen site is deterministic. *)

open Dp_netlist

type mutation =
  | Rewire_input
      (** rewire one cell input pin to a different, older net — structure
          stays legal, the {e function} changes; only equivalence
          checking can catch it *)
  | Cross_outputs
      (** swap the drivers of two cell-output nets (crossed wires between
          columns) — caught by [Driver_mismatch] *)
  | Drop_gate
      (** erase a cell's input list, modelling a dropped gate — caught by
          [Arity_violation] *)
  | Flip_const
      (** invert a constant driver, leaving its probability annotation
          stale — caught by [Const_prob] (and by equivalence) *)
  | Forward_input
      (** rewire a cell input to a net no older than the cell's outputs,
          breaking the evaluation order — caught by [Topo_violation] *)
  | Duplicate_driver
      (** point one net's driver at another net's source port — caught by
          [Multiply_driven] *)
  | Dangling_input
      (** point a cell input past the end of the net table — caught by
          [Dangling_ref] *)
  | Counter_retype
      (** swap a 4:2 compressor for an arity-matched 5:3 counter body (or
          vice versa) — structure stays legal, the per-port functions and
          output weights change; only equivalence checking can catch it *)
  | Counter_chain
      (** rewire a 4:2 compressor's carry-chain input (cin, pin 4) onto
          one of its own data pins — the chained carry-out is lost but the
          wiring stays legal; caught only by equivalence checking *)

val all : mutation list
val name : mutation -> string

(** The lint rule expected to fire, or [None] for the purely semantic
    classes — {!Rewire_input}, {!Counter_retype}, {!Counter_chain} —
    whose detector is equivalence checking. *)
val expected_rule : mutation -> Lint.rule option

(** [apply ~seed nl m] picks a site with a [seed]-derived generator and
    corrupts [nl]; returns a description of what was done, or [None] when
    the netlist offers no applicable site (e.g. {!Flip_const} on a
    netlist without constants). *)
val apply : ?seed:int -> Netlist.t -> mutation -> string option
