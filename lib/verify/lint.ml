open Dp_netlist

type rule =
  | Dangling_ref
  | Bad_driver
  | Driver_mismatch
  | Multiply_driven
  | Topo_violation
  | Combinational_cycle
  | Arity_violation
  | Prob_range
  | Const_prob
  | Arrival_range
  | Unreachable_cell
  | No_outputs
  | Empty_port

type loc = Net of Netlist.net | Cell of int | Port of string | Netlist

type finding = {
  rule : rule;
  severity : Dp_diag.Diag.severity;
  loc : loc;
  message : string;
}

let rule_name = function
  | Dangling_ref -> "dangling-ref"
  | Bad_driver -> "bad-driver"
  | Driver_mismatch -> "driver-mismatch"
  | Multiply_driven -> "multiply-driven"
  | Topo_violation -> "topo-violation"
  | Combinational_cycle -> "combinational-cycle"
  | Arity_violation -> "arity-violation"
  | Prob_range -> "prob-range"
  | Const_prob -> "const-prob"
  | Arrival_range -> "arrival-range"
  | Unreachable_cell -> "unreachable-cell"
  | No_outputs -> "no-outputs"
  | Empty_port -> "empty-port"

let severity_of_rule = function
  (* Dead gates are wasted area, not corruption: the builder legitimately
     leaves them behind wherever a dropped MSB carry-out was computed by a
     dedicated gate (degraded FAs, CLA group-carry terms). *)
  | Unreachable_cell -> Dp_diag.Diag.Info
  | No_outputs | Empty_port -> Dp_diag.Diag.Warning
  | Dangling_ref | Bad_driver | Driver_mismatch | Multiply_driven
  | Topo_violation | Combinational_cycle | Arity_violation | Prob_range
  | Const_prob | Arrival_range ->
    Dp_diag.Diag.Error

let pp_loc ppf = function
  | Net n -> Fmt.pf ppf "net %d" n
  | Cell c -> Fmt.pf ppf "cell %d" c
  | Port p -> Fmt.pf ppf "port %s" p
  | Netlist -> Fmt.string ppf "netlist"

let pp_finding ppf f =
  Fmt.pf ppf "%a[%s] %a: %s" Dp_diag.Diag.pp_severity f.severity
    (rule_name f.rule) pp_loc f.loc f.message

let to_diag f =
  Dp_diag.Diag.v ~severity:f.severity
    ~context:[ ("where", Fmt.str "%a" pp_loc f.loc) ]
    ~code:("DP-LINT-" ^ rule_name f.rule)
    ~subsystem:"lint" f.message

let run nl =
  let ncount = Netlist.net_count nl in
  let ccount = Netlist.cell_count nl in
  let findings = ref [] in
  let add rule loc fmt =
    Fmt.kstr
      (fun message ->
        findings :=
          { rule; severity = severity_of_rule rule; loc; message } :: !findings)
      fmt
  in
  let valid n = n >= 0 && n < ncount in
  (* Per-cell signature and ordering checks. *)
  for c = 0 to ccount - 1 do
    let { Netlist.kind; inputs } = Netlist.cell nl c in
    let outs = Netlist.cell_output_nets nl c in
    let arity = Dp_tech.Cell_kind.arity kind in
    if Array.length inputs <> arity then
      add Arity_violation (Cell c) "%s has %d inputs, expected %d"
        (Dp_tech.Cell_kind.name kind) (Array.length inputs) arity;
    (match kind with
    | Dp_tech.Cell_kind.And_n n | Or_n n | Xor_n n ->
      if n < 2 then
        add Arity_violation (Cell c) "%s: n-ary gate with n = %d < 2"
          (Dp_tech.Cell_kind.name kind) n
    | Fa | Ha | C42 | C53 | C63 | C73 | Not | Buf -> ());
    let out_count = Dp_tech.Cell_kind.output_count kind in
    if Array.length outs <> out_count then
      add Arity_violation (Cell c) "%s has %d output nets, expected %d"
        (Dp_tech.Cell_kind.name kind) (Array.length outs) out_count;
    Array.iteri
      (fun pin n ->
        if not (valid n) then
          add Dangling_ref (Cell c) "input pin %d references nonexistent net %d"
            pin n)
      inputs;
    Array.iteri
      (fun port n ->
        if not (valid n) then
          add Dangling_ref (Cell c) "output port %d maps to nonexistent net %d"
            port n)
      outs;
    if Array.length outs > 0 then begin
      let min_out = Array.fold_left min max_int outs in
      Array.iteri
        (fun pin n ->
          if valid n && n >= min_out then
            add Topo_violation (Cell c)
              "input pin %d consumes net %d, not older than output net %d" pin
              n min_out)
        inputs
    end
  done;
  (* Per-net driver and annotation checks. *)
  let port_driver = Hashtbl.create 97 in
  for n = 0 to ncount - 1 do
    (match Netlist.driver nl n with
    | Netlist.From_input _ | Netlist.From_const _ -> ()
    | Netlist.From_cell { cell; port } ->
      if cell < 0 || cell >= ccount then
        add Bad_driver (Net n) "driven by nonexistent cell %d" cell
      else begin
        let outs = Netlist.cell_output_nets nl cell in
        if port < 0 || port >= Array.length outs then
          add Bad_driver (Net n) "driven by cell %d port %d, which has %d ports"
            cell port (Array.length outs)
        else if outs.(port) <> n then
          add Driver_mismatch (Net n)
            "claims cell %d port %d as driver, but that port produces net %d"
            cell port
            outs.(port);
        match Hashtbl.find_opt port_driver (cell, port) with
        | Some first ->
          add Multiply_driven (Net n) "cell %d port %d already drives net %d"
            cell port first
        | None -> Hashtbl.add port_driver (cell, port) n
      end);
    let p = Netlist.prob nl n in
    if Float.is_nan p || p < 0.0 || p > 1.0 then
      add Prob_range (Net n) "1-probability %g outside [0, 1]" p
    else begin
      match Netlist.const_value nl n with
      | Some b ->
        let expect = if b then 1.0 else 0.0 in
        if p <> expect then
          add Const_prob (Net n) "constant %b annotated with probability %g" b p
      | None -> ()
    end;
    let a = Netlist.arrival nl n in
    if not (Float.is_finite a) then
      add Arrival_range (Net n) "arrival time %g is not finite" a
  done;
  (* Combinational cycles through cells (iterative 3-color DFS; a cycle
     always also violates net ordering, but the distinct finding tells the
     user the netlist is unevaluable rather than merely misordered). *)
  let deps c =
    let { Netlist.inputs; _ } = Netlist.cell nl c in
    Array.fold_right
      (fun n acc ->
        if valid n then
          match Netlist.driver nl n with
          | Netlist.From_cell { cell; port = _ }
            when cell >= 0 && cell < ccount ->
            cell :: acc
          | Netlist.From_cell _ | Netlist.From_input _ | Netlist.From_const _
            ->
            acc
        else acc)
      inputs []
  in
  let color = Array.make (max ccount 1) 0 in
  for root = 0 to ccount - 1 do
    if color.(root) = 0 then begin
      color.(root) <- 1;
      let stack = ref [ (root, deps root) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (c, []) :: rest ->
          color.(c) <- 2;
          stack := rest
        | (c, d :: more) :: rest ->
          stack := (c, more) :: rest;
          if color.(d) = 1 then
            add Combinational_cycle (Cell c)
              "depends (transitively) on its own output via cell %d" d
          else if color.(d) = 0 then begin
            color.(d) <- 1;
            stack := (d, deps d) :: !stack
          end
      done
    end
  done;
  (* Port-level checks and cell reachability from the declared outputs. *)
  let outputs = Netlist.outputs nl in
  if outputs = [] then add No_outputs Netlist "no outputs declared";
  List.iter
    (fun (name, nets) ->
      if Array.length nets = 0 then
        add Empty_port (Port name) "declared input bus has width 0")
    (Netlist.inputs nl);
  List.iter
    (fun (name, nets) ->
      if Array.length nets = 0 then
        add Empty_port (Port name) "declared output bus has width 0";
      Array.iteri
        (fun bit n ->
          if not (valid n) then
            add Dangling_ref (Port name) "bit %d references nonexistent net %d"
              bit n)
        nets)
    outputs;
  let reached = Array.make (max ccount 1) false in
  let mark_stack = ref [] in
  let push_net n =
    if valid n then
      match Netlist.driver nl n with
      | Netlist.From_cell { cell; port = _ } when cell >= 0 && cell < ccount ->
        if not reached.(cell) then begin
          reached.(cell) <- true;
          mark_stack := cell :: !mark_stack
        end
      | Netlist.From_cell _ | Netlist.From_input _ | Netlist.From_const _ -> ()
  in
  List.iter (fun (_, nets) -> Array.iter push_net nets) outputs;
  while !mark_stack <> [] do
    match !mark_stack with
    | [] -> ()
    | c :: rest ->
      mark_stack := rest;
      Array.iter push_net (Netlist.cell nl c).inputs
  done;
  for c = 0 to ccount - 1 do
    if not reached.(c) then
      add Unreachable_cell (Cell c) "%s feeds no declared output"
        (Dp_tech.Cell_kind.name (Netlist.cell nl c).kind)
  done;
  List.rev !findings

let errors fs =
  List.filter (fun f -> f.severity = Dp_diag.Diag.Error) fs

let significant fs =
  List.filter
    (fun f ->
      match f.severity with
      | Dp_diag.Diag.Warning | Dp_diag.Diag.Error -> true
      | Dp_diag.Diag.Info -> false)
    fs

type check_level = Off | Warn | Strict

let check_level_name = function
  | Off -> "off"
  | Warn -> "warn"
  | Strict -> "strict"

let check_level_of_name s =
  match String.lowercase_ascii s with
  | "off" | "none" -> Some Off
  | "warn" | "warning" -> Some Warn
  | "strict" | "error" -> Some Strict
  | _ -> None

let default_on_finding f = Fmt.epr "lint: %a@." pp_finding f

let gate ~level ?(on_finding = default_on_finding) nl =
  match level with
  | Off -> Ok ()
  | Warn ->
    List.iter on_finding (run nl);
    Ok ()
  | Strict -> (
    match significant (run nl) with
    | [] -> Ok ()
    | first :: _ as fs ->
      List.iter on_finding fs;
      Dp_diag.Diag.error
        (Dp_diag.Diag.errorf
           ~context:
             [
               ("findings", string_of_int (List.length fs));
               ("first-rule", rule_name first.rule);
             ]
           ~code:"DP-SYNTH002" ~subsystem:"synth"
           "netlist failed strict integrity check: %s" first.message))
