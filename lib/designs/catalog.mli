(** The paper's benchmark designs (Tables 1 and 2), reconstructed per
    DESIGN.md: widths and the listed non-zero arrivals from the paper,
    representative coefficients where the paper gives none. *)

val x2 : Design.t
val x3 : Design.t
val poly_x2xy : Design.t
val poly_square : Design.t
val poly_mixed : Design.t
val iir : Design.t
val kalman : Design.t
val idct : Design.t
val complex : Design.t
val serial_adapter : Design.t

(** The ten Table-1 rows, in order. *)
val table1 : Design.t list

(** The five Table-2 rows with seeded random input probabilities. *)
val table2 : Design.t list

val fir8 : Design.t
val butterfly : Design.t
val conv3x3 : Design.t
val dot4 : Design.t
val mac : Design.t
val horner3 : Design.t

(** Datapath kernels beyond the paper (FIR, FFT butterfly, convolution,
    dot product, MAC, Horner polynomial). *)
val extended : Design.t list

(** Crypto-scale designs (see {!Crypto}): 256-bit modular-multiply
    shapes as 32-bit limb decompositions.  Kept out of {!all} so the
    existing smoke workloads keep their cost profile; {!find} resolves
    them by name. *)
val crypto : Design.t list

val all : Design.t list
val find : string -> Design.t option
