open Dp_expr

let parse = Parse.expr

(* -------------------------------------------------------------------- *)
(* Polynomial designs: widths and non-zero input arrival times are taken
   from the first column of the paper's Table 1. *)

let x2 =
  {
    Design.name = "X2";
    description = "X^2, X: 3-bit (Table 1 row 1)";
    expr = parse "x^2";
    env = Env.add_uniform "x" ~width:3 Env.empty;
    width = 6;
  }

let x3 =
  {
    Design.name = "X3";
    description = "X^3, X: 4-bit (Table 1 row 2)";
    expr = parse "x^3";
    env = Env.add_uniform "x" ~width:4 Env.empty;
    width = 12;
  }

let poly_x2xy =
  {
    Design.name = "X2+X+Y";
    description = "X^2 + X + Y, X,Y: 8-bit, X arrives at 0.7 ns (Table 1 row 3)";
    expr = parse "x^2 + x + y";
    env =
      Env.empty
      |> Env.add_uniform "x" ~width:8 ~arrival:0.7
      |> Env.add_uniform "y" ~width:8;
    width = 16;
  }

let poly_square =
  {
    Design.name = "(x+y+1)^2";
    description =
      "x^2 + 2xy + y^2 + 2x + 2y + 1, x,y: 8-bit arriving at 1.0 ns (Table 1 row 4)";
    expr = parse "x^2 + 2*x*y + y^2 + 2*x + 2*y + 1";
    env =
      Env.empty
      |> Env.add_uniform "x" ~width:8 ~arrival:1.0
      |> Env.add_uniform "y" ~width:8 ~arrival:1.0;
    width = 18;
  }

let poly_mixed =
  {
    Design.name = "x+y-z+xy-yz+10";
    description = "x + y - z + x*y - y*z + 10, x,y,z: 8-bit (Table 1 row 5)";
    expr = parse "x + y - z + x*y - y*z + 10";
    env =
      Env.empty
      |> Env.add_uniform "x" ~width:8
      |> Env.add_uniform "y" ~width:8
      |> Env.add_uniform "z" ~width:8;
    width = 18;
  }

(* -------------------------------------------------------------------- *)
(* Filter/DSP designs.  The paper names the designs and their output
   widths; coefficients and arrival profiles are not given, so we use
   representative fixed-point constants and uneven arrivals (feedback and
   pipeline signals arrive late, with a small LSB-first intra-word skew),
   documented in DESIGN.md. *)

let iir =
  {
    Design.name = "IIR";
    description =
      "arithmetic part of a 2nd-order IIR (direct form II), 16-bit output; \
       feedback states w1/w2 arrive late";
    expr = parse "5*(x - 3*w1 - 2*w2) + 4*w1 + 3*w2";
    env =
      Env.empty
      |> Env.add_uniform "x" ~width:8
      |> Env.add "w1" ~width:8 ~arrival:(Design.staggered ~base:1.2 ~slope:0.1 8)
      |> Env.add "w2" ~width:8 ~arrival:(Design.staggered ~base:0.8 ~slope:0.1 8);
    width = 16;
  }

let kalman =
  {
    Design.name = "Kalman";
    description =
      "state-vector update row of a Kalman filter, 32-bit output; state \
       components become available one after another";
    expr = parse "14*x1 + 9*x2 + 23*x3 + 5*x4 + 11*u";
    env =
      Env.empty
      |> Env.add "x1" ~width:16 ~arrival:(Design.staggered ~base:0.0 ~slope:0.12 16)
      |> Env.add "x2" ~width:16 ~arrival:(Design.staggered ~base:0.4 ~slope:0.12 16)
      |> Env.add "x3" ~width:16 ~arrival:(Design.staggered ~base:0.8 ~slope:0.12 16)
      |> Env.add "x4" ~width:16 ~arrival:(Design.staggered ~base:1.2 ~slope:0.12 16)
      |> Env.add "u" ~width:16 ~arrival:(Design.staggered ~base:0.0 ~slope:0.12 16);
    width = 32;
  }

let idct =
  {
    Design.name = "IDCT";
    description =
      "one output of an 8-point 1-D IDCT with 12-bit cosine constants, \
       32-bit output; coefficients arrive staggered from the previous stage";
    expr =
      parse
        "4096*f0 + 4017*f1 + 3784*f2 + 3406*f3 + 2896*f4 + 2276*f5 + 1567*f6 \
         + 799*f7";
    env =
      List.fold_left
        (fun env (k, name) ->
          Env.add name ~width:16
            ~arrival:(Design.staggered ~base:(0.15 *. float_of_int k) ~slope:0.1 16)
            env)
        Env.empty
        [ 0, "f0"; 1, "f1"; 2, "f2"; 3, "f3"; 4, "f4"; 5, "f5"; 6, "f6"; 7, "f7" ];
    width = 32;
  }

let complex =
  {
    Design.name = "Complex";
    description =
      "real part of a complex multiplication (ac - bd), 16-bit operands, \
       32-bit output";
    expr = parse "a*c - b*d";
    env =
      List.fold_left
        (fun env name ->
          Env.add name ~width:16 ~arrival:(Design.staggered ~slope:0.1 16) env)
        Env.empty [ "a"; "b"; "c"; "d" ];
    width = 32;
  }

let serial_adapter =
  {
    Design.name = "Serial-Adapter";
    description =
      "3-port series adaptor of a wave-digital ladder filter: mostly \
       regular additions with one small constant scaling, 16-bit output";
    expr = parse "(a1 + a2 + a3) - 3*(b1 + b2 + b3)";
    env =
      List.fold_left
        (fun env name -> Env.add_uniform name ~width:12 env)
        Env.empty
        [ "a1"; "a2"; "a3"; "b1"; "b2"; "b3" ];
    width = 16;
  }

(* -------------------------------------------------------------------- *)
(* Extended benchmarks beyond the paper: common datapath kernels, used by
   the `extended` bench experiment and as additional test fodder. *)

let fir8 =
  {
    Design.name = "FIR8";
    description = "8-tap FIR filter with 10-bit coefficients, 12-bit samples";
    expr =
      parse
        "29*x0 + 211*x1 + 471*x2 + 598*x3 + 471*x4 + 211*x5 + 29*x6 + 3*x7";
    env =
      List.fold_left
        (fun env (k, name) ->
          Env.add name ~width:12
            ~arrival:(Design.staggered ~base:(0.1 *. float_of_int k) ~slope:0.05 12)
            env)
        Env.empty
        [ 0, "x0"; 1, "x1"; 2, "x2"; 3, "x3"; 4, "x4"; 5, "x5"; 6, "x6"; 7, "x7" ];
    width = 24;
  }

let butterfly =
  {
    Design.name = "Butterfly";
    description =
      "radix-2 FFT butterfly (real part): ar + wr*br - wi*bi, 12-bit data, \
       twiddle factors as inputs";
    expr = parse "ar + wr*br - wi*bi";
    env =
      List.fold_left
        (fun env name -> Env.add_uniform name ~width:12 env)
        Env.empty [ "ar"; "wr"; "br"; "wi"; "bi" ];
    width = 26;
  }

let conv3x3 =
  {
    Design.name = "Conv3x3";
    description =
      "3x3 Laplacian convolution: 8*p4 - p0 - p1 - p2 - p3 - p5 - p6 - p7 \
       - p8, 8-bit pixels";
    expr = parse "8*p4 - p0 - p1 - p2 - p3 - p5 - p6 - p7 - p8";
    env =
      List.fold_left
        (fun env name -> Env.add_uniform name ~width:8 env)
        Env.empty
        [ "p0"; "p1"; "p2"; "p3"; "p4"; "p5"; "p6"; "p7"; "p8" ];
    width = 12;
  }

let dot4 =
  {
    Design.name = "Dot4";
    description = "4-element dot product, 8-bit operands";
    expr = parse "a1*b1 + a2*b2 + a3*b3 + a4*b4";
    env =
      List.fold_left
        (fun env name -> Env.add_uniform name ~width:8 env)
        Env.empty
        [ "a1"; "b1"; "a2"; "b2"; "a3"; "b3"; "a4"; "b4" ];
    width = 18;
  }

let mac =
  {
    Design.name = "MAC";
    description =
      "multiply-accumulate acc + x*y: the accumulator arrives late from \
       the previous iteration";
    expr = parse "acc + x*y";
    env =
      Env.empty
      |> Env.add "acc" ~width:16 ~arrival:(Design.staggered ~base:1.0 ~slope:0.08 16)
      |> Env.add_uniform "x" ~width:8
      |> Env.add_uniform "y" ~width:8;
    width = 17;
  }

let horner3 =
  {
    Design.name = "Horner3";
    description =
      "cubic polynomial in Horner form ((7x + 23)x + 11)x + 5, 8-bit x";
    expr = parse "((7*x + 23)*x + 11)*x + 5";
    env = Env.add_uniform "x" ~width:8 Env.empty;
    width = 27;
  }

let extended = [ fir8; butterfly; conv3x3; dot4; mac; horner3 ]

(* -------------------------------------------------------------------- *)

let table1 =
  [
    x2;
    x3;
    poly_x2xy;
    poly_square;
    poly_mixed;
    iir;
    kalman;
    idct;
    complex;
    serial_adapter;
  ]

(* Table 2 measures power under "random signal probabilities for the
   inputs" on the five application designs; each design gets its own
   deterministic seed. *)
let table2 =
  List.mapi
    (fun i design -> Design.with_random_probs ~seed:(0x20DAC + i) design)
    [ iir; kalman; idct; complex; serial_adapter ]

(* The crypto-scale designs (256-bit modular-multiply shapes as 32-bit
   limb decompositions) live in [Crypto]; they are name-addressable here
   but deliberately kept out of [all], so `batch --designs` and the
   existing smoke jobs keep their cost profile — crypto traffic is opt-in
   via [crypto]/[Crypto.light]. *)
let crypto = Crypto.all

let all = table1 @ extended

let find name =
  List.find_opt
    (fun (d : Design.t) -> String.lowercase_ascii d.name = String.lowercase_ascii name)
    (all @ crypto)
