(* Crypto-scale catalog (ROADMAP item 3): the arithmetic cores of
   256-bit modular multiplication, expressed as 32-bit limb
   decompositions so they fit the flow's 62-bit output words while
   keeping the matrix shapes of the real thing — a weight-balanced
   product diagonal reaches height ~256, the scale at which resource
   governance (deadlines, cell budgets, memory watermarks) becomes
   load-bearing rather than decorative.

   Every design stays within the native-int evaluation model: output
   widths are <= 62, and coefficient arithmetic that overflows 63-bit
   ints wraps by a multiple of 2^63, which is 0 mod 2^width — so the
   bit-level lowering and the expression oracle agree and equivalence
   checking stays exact. *)

open Dp_expr

let parse = Parse.expr
let limb = 32

(* Lower limbs of an accumulator arrive earlier than higher ones, like a
   carry-save state trickling in from the previous iteration. *)
let limb_arrival k = Design.staggered ~base:(0.3 *. float_of_int k) ~slope:0.02 limb

(* The central (weight-7) diagonal of the 8x8-limb schoolbook product of
   two 256-bit operands: eight 32x32 partial products accumulated into
   one word — a ~256-high, ~512-column-scale bit matrix, the single
   heaviest reduction shape a 256-bit mul_mod performs. *)
let mul_mod_diag =
  let pairs = List.init 8 (fun i -> (Printf.sprintf "a%d" i, Printf.sprintf "b%d" (7 - i))) in
  {
    Design.name = "Crypto-MulModDiag256";
    description =
      "central diagonal of a 256-bit schoolbook multiply: a0*b7 + a1*b6 + \
       ... + a7*b0, 32-bit limbs (matrix height ~256)";
    expr =
      parse
        (String.concat " + " (List.map (fun (a, b) -> a ^ "*" ^ b) pairs));
    env =
      List.fold_left
        (fun env (k, name) -> Env.add name ~width:limb ~arrival:(limb_arrival k) env)
        Env.empty
        (List.concat_map
           (fun i -> [ (i, Printf.sprintf "a%d" i); (i, Printf.sprintf "b%d" i) ])
           (List.init 8 Fun.id));
    width = 62;
  }

(* One Montgomery reduction step against N = 2^32 + 977 (the secp256k1
   field prime's tail): t + m*N with N split into limbs, so the
   multiply-by-constant lowers through CSD recoding. *)
let montgomery_step =
  {
    Design.name = "Crypto-MontgomeryStep";
    description =
      "Montgomery step t + m*N for N = 2^32 + 977: t0 + 977*m + \
       4294967296*t1 + 4294967296*m, 32-bit limbs";
    expr = parse "t0 + 977*m + 4294967296*t1 + 4294967296*m";
    env =
      Env.empty
      |> Env.add "t0" ~width:limb ~arrival:(limb_arrival 0)
      |> Env.add "t1" ~width:limb ~arrival:(limb_arrival 1)
      |> Env.add "m" ~width:limb ~arrival:(limb_arrival 2);
    width = 62;
  }

(* secp256k1-style folding of the high half of a product back into the
   low word: hi * (2^32 + 977) joins lo0 + 2^32*lo1. *)
let secp_fold =
  {
    Design.name = "Crypto-SecpFold";
    description =
      "reduction fold lo0 + 4294967296*lo1 + 4294968273*hi (hi folded by \
       2^32 + 977), 32-bit limbs";
    expr = parse "lo0 + 4294967296*lo1 + 4294968273*hi";
    env =
      Env.empty
      |> Env.add "lo0" ~width:limb ~arrival:(limb_arrival 0)
      |> Env.add "lo1" ~width:limb ~arrival:(limb_arrival 1)
      |> Env.add "hi" ~width:limb ~arrival:(limb_arrival 3);
    width = 62;
  }

(* wNAF scalar-multiplication accumulation: signed precomputed points
   scaled by odd window digits — wide signed operands exercising the
   Baugh-Wooley signed partial products at crypto width. *)
let wnaf_chain =
  {
    Design.name = "Crypto-WnafChain";
    description =
      "wNAF accumulation 15*p0 - 9*p1 + 7*p2 - 5*p3 + 3*p4 - p5 over \
       signed 32-bit points";
    expr = parse "15*p0 - 9*p1 + 7*p2 - 5*p3 + 3*p4 - p5";
    env =
      List.fold_left
        (fun env (k, name) ->
          Env.add name ~width:limb ~signed:true ~arrival:(limb_arrival k) env)
        Env.empty
        (List.mapi (fun k n -> (k, n)) [ "p0"; "p1"; "p2"; "p3"; "p4"; "p5" ]);
    width = 40;
  }

(* Deep multiply-accumulate chain: the per-round shape of a wide modular
   multiply-accumulate (or an NTT butterfly column) with a late
   accumulator — eight 28x28 products plus the accumulator word. *)
let mac_chain =
  let names = List.init 8 (fun i -> (Printf.sprintf "x%d" i, Printf.sprintf "y%d" i)) in
  {
    Design.name = "Crypto-MacChain";
    description =
      "deep MAC chain acc + x0*y0 + ... + x7*y7, 28-bit operands, \
       late-arriving accumulator (matrix height ~224)";
    expr =
      parse
        ("acc + "
        ^ String.concat " + " (List.map (fun (x, y) -> x ^ "*" ^ y) names));
    env =
      List.fold_left
        (fun env name -> Env.add name ~width:28 ~arrival:(Design.staggered ~slope:0.03 28) env)
        (Env.add "acc" ~width:56
           ~arrival:(Design.staggered ~base:1.5 ~slope:0.02 56)
           Env.empty)
        (List.concat_map (fun (x, y) -> [ x; y ]) names);
    width = 60;
  }

let all = [ montgomery_step; secp_fold; wnaf_chain; mac_chain; mul_mod_diag ]

(* The cheap members, for workloads that run many requests (soak mixes,
   smoke batches) and only need crypto-shaped traffic, not the full
   height-256 reduction every time. *)
let light = [ montgomery_step; secp_fold; wnaf_chain ]
